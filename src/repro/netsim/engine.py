"""The forwarding engine: hop-by-hop probe simulation.

This is the stand-in for the live Internet.  A probe injected at a vantage
host walks the routed path hop by hop with real TTL semantics: every
intermediate router decrements the TTL and, at zero, answers with an ICMP
TTL-Exceeded sourced according to its response configuration; the router
owning the destination address delivers and answers according to its direct
configuration.  Firewalls, silent interfaces, protocol bias and rate limits
are consulted through the :class:`~repro.netsim.responsiveness.ResponsePolicy`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from dataclasses import replace

from .packet import (
    ALIVE_RESPONSES,
    RECORD_ROUTE_SLOTS,
    Probe,
    Protocol,
    Response,
    ResponseType,
)
from .responsiveness import ResponsePolicy, fully_responsive
from .router import DirectConfig, IndirectConfig, IpIdMode, Router
from .routing import FlowKey, LoadBalancer, RoutingTable
from .topology import Host, Topology

try:  # numpy is optional by contract: the bulk lookup falls back to the
    import numpy as _np  # tuned per-probe loop with identical semantics.
except ImportError:  # pragma: no cover - exercised via vector_path=False
    _np = None

#: Batches below this size never pay the vectorized setup cost; the
#: per-probe loop wins on small batches (surveys run batch_window=1).
_BULK_MIN_BATCH = 24

_PROTO_ORDINAL = {protocol: index for index, protocol in enumerate(Protocol)}


def _randrange_matches_getrandbits() -> bool:
    """Whether ``Random.randrange(n)`` is rejection sampling on
    ``getrandbits(n.bit_length())`` on this interpreter (true on CPython).

    The bulk send loop inlines the IP-ID draws as raw ``getrandbits``
    calls — half the cost of the ``randrange`` call stack — but only when
    the replication is bit-exact, so cached and walked probes keep
    consuming the identical RNG stream everywhere else too.
    """
    walked, inlined = random.Random(0xC0FFEE), random.Random(0xC0FFEE)
    for bound in (1, 3, 8, 100, 65536):
        bits = bound.bit_length()
        for _ in range(64):
            draw = inlined.getrandbits(bits)
            while draw >= bound:
                draw = inlined.getrandbits(bits)
            if walked.randrange(bound) != draw:
                return False
    return True


_INLINE_RANDBITS = _randrange_matches_getrandbits()


class UnassignedAddressBehavior(enum.Enum):
    """What the last-hop router does for an address with no interface."""

    SILENT = "silent"
    HOST_UNREACHABLE = "host-unreachable"


@dataclass
class WireEvent:
    """One hop of a probe's journey, for debugging and white-box tests."""

    probe_id: int
    router_id: str
    action: str
    detail: str = ""


@dataclass
class EngineStats:
    """Counters the overhead benches read."""

    probes_sent: int = 0
    responses_returned: int = 0
    silent_drops: int = 0
    per_protocol: dict = field(default_factory=dict)
    #: Resolved-path fast-path accounting: a miss walks the topology and
    #: memoizes the path, a hit answers from the memo, an uncacheable probe
    #: belongs to a flow crossing a per-packet load balancer.
    path_cache_hits: int = 0
    path_cache_misses: int = 0
    path_cache_uncacheable: int = 0
    #: Batch-API accounting: calls to :meth:`Engine.send_many` and the
    #: probes they carried (each probe also counts in ``probes_sent``).
    batches: int = 0
    batched_probes: int = 0
    #: Bulk resolved-path lookup accounting, kept on *every* send_many
    #: implementation (vectorized or the pure-python fallback) so the
    #: invariant ``bulk_lookup_hits + bulk_lookup_misses == batched_probes``
    #: reconciles on all platforms.  A hit was answered straight from the
    #: memoized-path lookup; a miss fell back to the per-probe walk
    #: (cache miss, uncacheable flow, record-route, or cache disabled).
    bulk_lookup_hits: int = 0
    bulk_lookup_misses: int = 0

    def record_probe(self, protocol: Protocol) -> None:
        self.probes_sent += 1
        self.per_protocol[protocol] = self.per_protocol.get(protocol, 0) + 1

    def snapshot(self) -> dict:
        """Flat JSON-able counters (benches, transport backend metrics)."""
        flat = {
            "engine_probes_sent": self.probes_sent,
            "engine_responses_returned": self.responses_returned,
            "engine_silent_drops": self.silent_drops,
            "engine_path_cache_hits": self.path_cache_hits,
            "engine_path_cache_misses": self.path_cache_misses,
            "engine_path_cache_uncacheable": self.path_cache_uncacheable,
            "engine_batches": self.batches,
            "engine_batched_probes": self.batched_probes,
            "engine_bulk_lookup_hits": self.bulk_lookup_hits,
            "engine_bulk_lookup_misses": self.bulk_lookup_misses,
        }
        for protocol, count in sorted(self.per_protocol.items(),
                                      key=lambda item: item[0].value):
            flat[f"engine_probes_{protocol.value}"] = count
        return flat


class PathTerminal(enum.Enum):
    """How a fully resolved path ends when the TTL never expires."""

    OWNS = "owns"            # last router owns the destination address
    LAN = "lan"              # last router delivers across the destination LAN
    NO_ROUTE = "no-route"    # forwarding dead-ends: silence
    HOP_LIMIT = "hop-limit"  # max_hops routers crossed: silence


class ResponsePlan(NamedTuple):
    """Precomputed static half of one response decision.

    Everything clock-independent — firewalls, silent interfaces, silent
    routers, protocol refusals, NIL configs and the reply source address —
    is resolved once per memoized path.  Only the rate-limit bucket draw and
    the IP-ID counter stay live at replay: a plan of None means the static
    checks already failed *before* the walk would have touched the bucket,
    while ``source=None`` means the walk consumes a token and then stays
    silent (a NIL config), so bucket state matches the walk exactly.
    """

    kind: ResponseType
    source: Optional[int]
    responder: str
    ip_id_mode: IpIdMode
    draws_bucket: bool


@dataclass(frozen=True)
class ResolvedPath:
    """The memoized router walk for one (src, dst, protocol, flow) flow.

    ``router_ids[i]`` is the i-th router the probe visits; ``incoming[i]``
    the address of the interface it arrived on (None at unknown entries);
    ``stamps[i]`` the record-route stamp the router adds when forwarding
    (None when it adds none).  ``hop_plans[i]`` is the response plan when
    the TTL expires at hop i and ``terminal_plan`` the plan past the last
    hop; ``expiry_limit`` is the largest TTL that still expires in transit.
    Rate limiters, IP-ID counters and the virtual clock are consulted live
    at replay, so cached and walked probes stay identical packet for packet.
    """

    router_ids: Tuple[str, ...]
    incoming: Tuple[Optional[int], ...]
    stamps: Tuple[Optional[int], ...]
    terminal: PathTerminal
    lan_subnet_id: Optional[str] = None
    hop_plans: Tuple[Optional[ResponsePlan], ...] = ()
    terminal_plan: Optional[ResponsePlan] = None
    expiry_limit: int = 0
    terminal_stamp_upto: int = 0


#: Cache sentinel: the flow crosses a per-packet balancer, never memoize it.
_UNCACHEABLE = None
_MISSING = object()


class _BulkSubIndex:
    """Packed-key slot index for one ``(protocol, flow_id)`` family.

    Keys are ``(src << 32) | dst`` packed into uint64; ``keys`` is kept
    sorted so a whole batch resolves with one ``searchsorted`` instead of a
    dict probe per packet.  Fresh memoizations land in ``pending`` (a plain
    dict) and are folded into the sorted arrays at the family's next bulk
    lookup — one O(n log n) merge per batch that saw new flows, instead of
    an O(n) sorted insertion per miss.
    """

    __slots__ = ("keys", "slots", "pending")

    def __init__(self) -> None:
        self.keys = None   # sorted uint64 array of packed (src, dst) keys
        self.slots = None  # int64 array aligned with ``keys``
        self.pending: Dict[int, int] = {}

    def merge(self) -> None:
        """Fold the pending entries into the sorted arrays."""
        pending = self.pending
        keys = _np.fromiter(pending.keys(), _np.uint64, len(pending))
        slots = _np.fromiter(pending.values(), _np.int64, len(pending))
        if self.keys is not None:
            keys = _np.concatenate([self.keys, keys])
            slots = _np.concatenate([self.slots, slots])
        order = _np.argsort(keys, kind="stable")
        self.keys = keys[order]
        self.slots = slots[order]
        pending.clear()


class Engine:
    """Injects probes into a topology and produces responses.

    The engine owns a virtual clock that ticks once per probe; rate limiters
    run on that clock, so behaviour is reproducible probe for probe.
    """

    def __init__(self, topology: Topology,
                 routing: Optional[RoutingTable] = None,
                 policy: Optional[ResponsePolicy] = None,
                 balancer: Optional[LoadBalancer] = None,
                 max_hops: int = 64,
                 unassigned_behavior: UnassignedAddressBehavior =
                 UnassignedAddressBehavior.SILENT,
                 keep_wire_log: bool = False,
                 seed: int = 0,
                 ip_id_noise: int = 8,
                 path_cache: bool = True,
                 vector_path: bool = True):
        self.topology = topology
        self.routing = routing if routing is not None else RoutingTable(topology)
        self.policy = policy if policy is not None else fully_responsive()
        self.balancer = balancer if balancer is not None else LoadBalancer()
        self.max_hops = max_hops
        self.unassigned_behavior = unassigned_behavior
        self.clock = 0
        self.stats = EngineStats()
        self.wire_log: List[WireEvent] = []
        self._keep_wire_log = keep_wire_log
        # IP-ID state: per-responder shared counters (plus noise emulating
        # the router's other traffic) or per-packet random values.
        self._ip_id_rng = random.Random(seed ^ 0x1D5EED)
        self._ip_id_noise = max(0, ip_id_noise)
        self._ip_id_counters: Dict[str, int] = {}
        # Resolved-path fast path: (src, dst, protocol, flow_id) -> the
        # memoized router walk, or _UNCACHEABLE for per-packet flows.
        self.use_path_cache = path_cache
        # Keyed on the Protocol enum itself: enum identity hashing is
        # cheaper than the .value descriptor in the per-probe hot loops.
        self._path_cache: Dict[Tuple[int, int, Protocol, int],
                               Optional[ResolvedPath]] = {}
        # Vectorized bulk lookup over the same memo: per-(protocol, flow)
        # sorted packed-key arrays resolve whole batches via searchsorted,
        # and every memoized path is flattened into slot-indexed plan-id
        # arrays so per-probe plan selection becomes one numpy gather.
        # Optional: without numpy (or with vector_path=False) send_many
        # uses the pure-python loop below with identical semantics.
        self.vector_path = bool(vector_path) and _np is not None
        self._bulk_index: Dict[Tuple[Protocol, int], _BulkSubIndex] = {}
        #: pid -> (kind, source, responder, random_ip_id, draws_bucket);
        #: pid -1 encodes "statically silent, no bucket touched".
        self._plan_rows: list = []
        self._plan_ids: Dict[ResponsePlan, int] = {}
        self._plan_nil: List[bool] = []
        self._nil_pid_arr = None
        self._slot_count = 0
        self._flat_len = 0
        if self.vector_path:
            self._slot_offset = _np.empty(64, _np.int64)
            self._slot_limit = _np.empty(64, _np.int64)
            self._flat_pids = _np.empty(256, _np.int64)
        else:
            self._slot_offset = self._slot_limit = self._flat_pids = None
        # Mutation watch: memoized paths bake in the topology walk, the
        # policy's static response decisions and the balancer's per-flow
        # choices.  Any of the three changing mid-run (netsim.dynamics)
        # must drop the memo before the next probe is answered.
        self._cache_stamp = (topology.version, self.policy.version,
                             self.balancer.version)

    # -- public API --------------------------------------------------------

    def _check_mutations(self) -> None:
        """Drop stale memoized paths after a topology/policy/ECMP mutation.

        Version stamps, never content checks: a mutated network answers
        from a fresh walk on the very next probe (the routing table does
        its own version-driven rebuild).  Cheap enough for the per-send
        hot path — three attribute reads and a tuple compare.
        """
        stamp = (self.topology.version, self.policy.version,
                 self.balancer.version)
        if stamp != self._cache_stamp:
            self._cache_stamp = stamp
            self.clear_path_cache()

    def idle(self, ticks: int = 1) -> None:
        """Advance the virtual clock without sending (retry backoff):
        rate-limit buckets refill as if ``ticks`` probes' worth of time
        passed, deterministically."""
        if ticks > 0:
            self.clock += ticks

    def send(self, probe: Probe) -> Optional[Response]:
        """Inject one probe; return the response seen at the vantage (or None)."""
        self._check_mutations()
        self.clock += 1
        self.stats.record_probe(probe.protocol)
        stamps: Optional[List[int]] = [] if probe.record_route else None
        if self.use_path_cache and not self._keep_wire_log:
            response = self._send_cached(probe, stamps)
        else:
            response = self._walk(probe, stamps)
        if response is not None and probe.record_route and stamps:
            response = replace(response, record_route=tuple(stamps))
        if response is None:
            self.stats.silent_drops += 1
        else:
            self.stats.responses_returned += 1
        return response

    def send_many(self, probes) -> List[Optional[Response]]:
        """Inject a batch of probes; responses positionally, None for silence.

        Packet-for-packet identical to calling :meth:`send` in a loop — the
        clock ticks once per probe in order, rate-limit buckets and IP-ID
        counters advance identically — but cache hits are answered in one
        tight loop that skips the per-call dispatch overhead.  This is the
        simulator's native half of the transport ``send_many`` API and what
        the ``batched`` bench lane measures.
        """
        self._check_mutations()
        stats = self.stats
        stats.batches += 1
        stats.batched_probes += len(probes)
        if not self.use_path_cache or self._keep_wire_log:
            stats.bulk_lookup_misses += len(probes)
            return [self.send(probe) for probe in probes]
        if (self.vector_path and len(probes) >= _BULK_MIN_BATCH
                and self._bulk_index):
            responses = self._send_many_bulk(probes)
            if responses is not None:
                return responses

        responses: List[Optional[Response]] = []
        append = responses.append
        cache = self._path_cache
        per_protocol = stats.per_protocol
        rate_allows = self.policy.rate_limit_allows
        # The IP-ID draw is inlined below — same RNG calls in the same
        # order as _next_ip_id, without the per-response method dispatch.
        randrange = self._ip_id_rng.randrange
        id_counters = self._ip_id_counters
        id_noise = self._ip_id_noise
        random_mode = IpIdMode.RANDOM
        new_response = Response.__new__
        clock = self.clock
        fast = returned = silent = 0
        run_protocol = None  # run-length per-protocol accounting
        run_count = 0
        for probe in probes:
            path = cache.get((probe.src, probe.dst, probe.protocol,
                              probe.flow_id), _MISSING)
            if probe.record_route or path is _MISSING or path is _UNCACHEABLE:
                # Slow path: misses, uncacheable flows and record-route
                # probes take the ordinary send() with the shared clock.
                self.clock = clock
                append(self.send(probe))
                clock = self.clock
                continue
            clock += 1
            fast += 1
            protocol = probe.protocol
            if protocol is run_protocol:
                run_count += 1
            else:
                if run_count:
                    per_protocol[run_protocol] = (
                        per_protocol.get(run_protocol, 0) + run_count)
                run_protocol = protocol
                run_count = 1
            ttl = probe.ttl
            plan = (path.hop_plans[ttl - 1] if ttl <= path.expiry_limit
                    else path.terminal_plan)
            # Mirror _replay's ordering exactly: the bucket is drawn before
            # the NIL (source=None) check, so a rate-limited NIL router's
            # token state matches a serial run packet for packet.
            if plan is None or (
                    plan.draws_bucket
                    and not rate_allows(plan.responder, clock)
            ) or plan.source is None:
                silent += 1
                append(None)
                continue
            returned += 1
            responder = plan.responder
            if plan.ip_id_mode is random_mode:
                ip_id = randrange(65536)
            else:
                current = id_counters.get(responder)
                if current is None:
                    current = randrange(65536)
                step = 1 + (randrange(id_noise) if id_noise else 0)
                ip_id = (current + step) % 65536
                id_counters[responder] = ip_id
            # Frozen-dataclass bypass: Response.__init__ pays one
            # object.__setattr__ per field; assembling __dict__ directly is
            # the same object at a fraction of the cost.  Keep the key set
            # in lockstep with Response's fields.
            response = new_response(Response)
            fields = response.__dict__
            fields["kind"] = plan.kind
            fields["source"] = plan.source
            fields["probe"] = probe
            fields["responder"] = responder
            fields["ip_id"] = ip_id
            fields["record_route"] = ()
            append(response)
        if run_count:
            per_protocol[run_protocol] = (
                per_protocol.get(run_protocol, 0) + run_count)
        self.clock = clock
        stats.probes_sent += fast
        stats.path_cache_hits += fast
        stats.bulk_lookup_hits += fast
        stats.bulk_lookup_misses += len(probes) - fast
        stats.responses_returned += returned
        stats.silent_drops += silent
        return responses

    def clear_path_cache(self) -> None:
        """Forget every memoized path (e.g. after mutating the topology)."""
        self._path_cache.clear()
        # The bulk index mirrors the memo; drop it too.  Plan rows and slot
        # storage stay allocated — stale slots are unreachable once the
        # per-flow indexes are gone, and fresh memoizations reuse the arrays.
        self._bulk_index.clear()

    def path_routers(self, src_host_id: str, dst: int) -> List[str]:
        """Ground-truth router path from a host toward ``dst`` (tests only).

        Uses flow id 0, so under per-flow balancing this is *a* stable path;
        under per-packet balancing it is one sample.
        """
        host = self.topology.hosts[src_host_id]
        flow = FlowKey(src=host.address, dst=dst, protocol="icmp", flow_id=0)
        path: List[str] = []
        current_id = host.gateway_router_id
        dest_subnet = self.topology.subnet_containing(dst)
        for _ in range(self.max_hops):
            path.append(current_id)
            router = self.topology.routers[current_id]
            if router.owns(dst):
                return path
            if dest_subnet is not None and router.interface_on(dest_subnet.subnet_id):
                iface = self.topology.interface_at(dst)
                if iface is None:
                    return path
                path.append(iface.router_id)
                return path
            if dest_subnet is None:
                return path
            hops = self.routing.next_hops(current_id, dest_subnet.subnet_id)
            if not hops:
                return path
            current_id = self.balancer.choose(current_id, hops, flow).router_id
        return path

    def hop_distance(self, src_host_id: str, dst: int) -> Optional[int]:
        """Ground-truth hop distance from a host to an interface address."""
        iface = self.topology.interface_at(dst)
        if iface is None:
            return None
        path = self.path_routers(src_host_id, dst)
        if not path or path[-1] != iface.router_id:
            return None
        return len(path)

    # -- internals ----------------------------------------------------------

    def _log(self, probe: Probe, router_id: str, action: str, detail: str = "") -> None:
        if self._keep_wire_log:
            self.wire_log.append(WireEvent(probe.probe_id, router_id, action, detail))

    def _walk(self, probe: Probe, stamps: Optional[List[int]] = None
              ) -> Optional[Response]:
        host = self.topology.host_at(probe.src)
        if host is None:
            raise ValueError(f"probe source {probe.src} is not a registered host")
        flow = FlowKey(src=probe.src, dst=probe.dst,
                       protocol=probe.protocol.value, flow_id=probe.flow_id)
        dest_subnet = self.topology.subnet_containing(probe.dst)
        dest_host = self.topology.host_at(probe.dst)

        current = self.topology.routers[host.gateway_router_id]
        incoming_address: Optional[int] = None
        entry_iface = current.interface_on(host.subnet_id)
        if entry_iface is not None:
            incoming_address = entry_iface.address
        ttl = probe.ttl

        for _ in range(self.max_hops):
            if current.owns(probe.dst):
                self._log(probe, current.router_id, "deliver")
                return self._direct_response(probe, current)

            ttl -= 1
            if ttl == 0:
                self._log(probe, current.router_id, "ttl-exceeded")
                return self._ttl_exceeded(probe, current, incoming_address, host)

            if dest_subnet is not None and current.interface_on(dest_subnet.subnet_id):
                self._stamp(probe, current, dest_subnet.subnet_id, stamps)
                return self._deliver_across_lan(probe, current, dest_subnet.subnet_id,
                                                dest_host)
            if dest_subnet is None:
                self._log(probe, current.router_id, "no-route")
                return None
            hops = self.routing.next_hops(current.router_id, dest_subnet.subnet_id)
            if not hops:
                self._log(probe, current.router_id, "no-route")
                return None
            choice = self.balancer.choose(current.router_id, hops, flow)
            self._stamp(probe, current, choice.via_subnet_id, stamps)
            next_router = self.topology.routers[choice.router_id]
            via_iface = next_router.interface_on(choice.via_subnet_id)
            incoming_address = via_iface.address if via_iface is not None else None
            self._log(probe, current.router_id, "forward",
                      f"-> {choice.router_id} via {choice.via_subnet_id}")
            current = next_router
        self._log(probe, current.router_id, "hop-limit")
        return None

    # -- resolved-path fast path ---------------------------------------------

    def _send_cached(self, probe: Probe, stamps: Optional[List[int]]
                     ) -> Optional[Response]:
        """Answer from the memoized path when one exists, else walk + memoize.

        Per-packet-balanced flows are detected on first contact and marked
        uncacheable; they take the full walk forever after.  Response
        generation (policy checks, rate-limit buckets, IP-ID counters) always
        runs live against the current clock — only the forwarding decision
        sequence is memoized.
        """
        key = (probe.src, probe.dst, probe.protocol, probe.flow_id)
        entry = self._path_cache.get(key, _MISSING)
        if entry is _MISSING:
            self.stats.path_cache_misses += 1
            response = self._walk(probe, stamps)
            resolved = self._resolve_path(probe)
            self._path_cache[key] = resolved
            if resolved is not None and self.vector_path:
                self._bulk_register(key, resolved)
            return response
        if entry is _UNCACHEABLE:
            self.stats.path_cache_uncacheable += 1
            return self._walk(probe, stamps)
        self.stats.path_cache_hits += 1
        return self._replay(probe, entry, stamps)

    # -- vectorized bulk lookup ---------------------------------------------

    def _bulk_plan_id(self, plan: Optional[ResponsePlan]) -> int:
        """Intern one response plan into the flat plan registry.

        -1 encodes static silence with no live side effect (plan is None,
        or a source-less plan that never draws a bucket).  A NIL plan that
        *does* draw keeps a row so replay consumes the token like the walk.
        """
        if plan is None or (plan.source is None and not plan.draws_bucket):
            return -1
        pid = self._plan_ids.get(plan)
        if pid is None:
            pid = len(self._plan_rows)
            self._plan_rows.append(
                (plan.kind, plan.source, plan.responder,
                 plan.ip_id_mode is IpIdMode.RANDOM, plan.draws_bucket))
            # NIL rows (token drawn, then silence) only behave differently
            # from static silence while some bucket exists; the bulk gather
            # remaps them to -1 when the policy has no limiters at all.
            self._plan_nil.append(plan.source is None)
            self._nil_pid_arr = None
            self._plan_ids[plan] = pid
        return pid

    def _bulk_register(self, key: Tuple[int, int, Protocol, int],
                       path: ResolvedPath) -> None:
        """Mirror one fresh memoization into the packed-key bulk index."""
        plan_id = self._bulk_plan_id
        limit = path.expiry_limit
        # Flat layout per slot: hop plan ids for TTL 1..limit, then the
        # terminal plan at position ``limit`` — so per-probe selection is
        # ``flat[offset + min(ttl - 1, limit)]``, a pure gather.
        pids = [plan_id(path.hop_plans[i]) for i in range(limit)]
        pids.append(plan_id(path.terminal_plan))
        flat = self._flat_pids
        start = self._flat_len
        need = start + len(pids)
        if need > flat.shape[0]:
            grown = _np.empty(max(need, flat.shape[0] * 2), _np.int64)
            grown[:start] = flat[:start]
            self._flat_pids = flat = grown
        flat[start:need] = pids
        self._flat_len = need
        slot = self._slot_count
        if slot >= self._slot_offset.shape[0]:
            for name in ("_slot_offset", "_slot_limit"):
                old = getattr(self, name)
                grown = _np.empty(old.shape[0] * 2, _np.int64)
                grown[:slot] = old[:slot]
                setattr(self, name, grown)
        self._slot_offset[slot] = start
        self._slot_limit[slot] = limit
        self._slot_count = slot + 1
        family = (key[2], key[3])
        sub = self._bulk_index.get(family)
        if sub is None:
            sub = self._bulk_index[family] = _BulkSubIndex()
        sub.pending[(key[0] << 32) | key[1]] = slot

    def _send_many_bulk(self, probes) -> Optional[List[Optional[Response]]]:
        """Vectorized half of :meth:`send_many`.

        Resolves the whole batch against the packed-key index in numpy —
        slot lookup via searchsorted per (protocol, flow) run, plan-id
        selection as one gather — then walks the batch once in probe order
        for the live parts (clock, rate-limit buckets, IP-ID draws), which
        keeps every RNG and bucket stream identical to serial sends.
        Returns None when nothing resolved (the per-probe loop handles the
        batch instead).
        """
        np = _np
        n = len(probes)
        # Field extraction runs as plain listcomps + C-level conversions;
        # np.fromiter over attribute generators costs ~4x as much and was
        # the dominant overhead of an earlier cut of this path.
        srcs = [p.src for p in probes]
        dsts = [p.dst for p in probes]
        flows = [p.flow_id for p in probes]
        protos = [p.protocol for p in probes]
        dst_arr = np.array(dsts, np.uint64)
        if srcs.count(srcs[0]) == n:  # single vantage: scalar key prefix
            key_arr = np.uint64(srcs[0] << 32) | dst_arr
        else:
            key_arr = (np.array(srcs, np.uint64) << np.uint64(32)) | dst_arr
        # (protocol, flow) run boundaries: TTL sweeps share long runs, so
        # the per-family dict probe happens once per run, not per packet.
        # list.count is C-speed, so the (overwhelmingly common) single-run
        # batch never builds the boundary arrays at all.
        if protos.count(protos[0]) == n and flows.count(flows[0]) == n:
            bounds = [0, n]
        else:
            proto_arr = np.array([_PROTO_ORDINAL[p] for p in protos],
                                 np.int64)
            flow_arr = np.array(flows, np.int64)
            change = proto_arr[1:] != proto_arr[:-1]
            change |= flow_arr[1:] != flow_arr[:-1]
            bounds = [0]
            bounds.extend((np.nonzero(change)[0] + 1).tolist())
            bounds.append(n)
        slots = np.full(n, -1, np.int64)
        index = self._bulk_index
        groups = []
        for gi in range(len(bounds) - 1):
            start, stop = bounds[gi], bounds[gi + 1]
            first = probes[start]
            groups.append((start, stop, first.protocol))
            sub = index.get((first.protocol, first.flow_id))
            if sub is None:
                continue
            if sub.pending:
                # Fold fresh memoizations in eagerly: a merge is O(K log K)
                # once, while unmerged entries cost a python dict probe per
                # missing packet on *every* batch.  Steady state (no new
                # flows) then runs pure searchsorted with no fixup pass.
                sub.merge()
            keys = sub.keys
            segment = key_arr[start:stop]
            if keys is not None and keys.shape[0]:
                pos = keys.searchsorted(segment)
                np.minimum(pos, keys.shape[0] - 1, out=pos)
                found = keys[pos] == segment
                slots[start:stop] = np.where(found, sub.slots[pos], -1)
        valid = slots >= 0
        record_flags = [p.record_route for p in probes]
        if True in record_flags:
            valid &= ~np.array(record_flags, np.bool_)
        fast = int(np.count_nonzero(valid))
        if fast == 0:
            return None
        ttl_arr = np.array([p.ttl for p in probes], np.int64)
        safe = np.where(valid, slots, 0)
        flat_index = self._slot_offset[safe] + np.minimum(
            ttl_arr - 1, self._slot_limit[safe])
        pids = self._flat_pids[flat_index]
        # A draws_bucket plan only needs the live call when some bucket
        # actually exists; with none attached rate_limit_allows is
        # vacuously True and there is no token state to advance, so NIL
        # rows collapse to static silence and the hot loop below can skip
        # every per-probe policy check.
        bucket_live = self.policy.rate_limited
        if not bucket_live and self._plan_nil:
            nil_arr = self._nil_pid_arr
            if nil_arr is None:
                # Sentinel False at the end: pid -1 gathers the last entry.
                nil_arr = self._nil_pid_arr = np.array(
                    self._plan_nil + [False], np.bool_)
            pids = np.where(nil_arr[pids], np.int64(-1), pids)
        # -2 marks the probes the per-probe slow path must handle (misses,
        # uncacheable flows, record-route); -1 stays "statically silent".
        if fast == n:
            pid_list = pids.tolist()
        else:
            pid_list = np.where(valid, pids, -2).tolist()

        stats = self.stats
        per_protocol = stats.per_protocol
        for start, stop, protocol in groups:
            count = int(np.count_nonzero(valid[start:stop]))
            if count:
                per_protocol[protocol] = per_protocol.get(protocol, 0) + count
        responses: List[Optional[Response]] = []
        append = responses.append
        plan_rows = self._plan_rows
        rate_allows = self.policy.rate_limit_allows
        randrange = self._ip_id_rng.randrange
        getrandbits = self._ip_id_rng.getrandbits
        id_counters = self._ip_id_counters
        id_noise = self._ip_id_noise
        noise_bits = id_noise.bit_length()
        inline_bits = _INLINE_RANDBITS
        new_response = Response.__new__
        send = self.send
        clock = self.clock
        returned = silent = 0
        if not bucket_live and fast == n:
            # Fully-resolved batch, no token buckets: the warm steady state.
            # Every probe advances the clock by exactly one and a
            # non-negative pid is guaranteed answered, so the clock and the
            # returned/silent tallies are batch-computable — the hot loop
            # carries no per-probe bookkeeping at all, just the IP-ID draws
            # and the response construction.
            for probe, pid in zip(probes, pid_list):
                if pid >= 0:
                    kind, source, responder, random_id, _ = plan_rows[pid]
                    if random_id:
                        if inline_bits:
                            ip_id = getrandbits(17)
                            while ip_id >= 65536:
                                ip_id = getrandbits(17)
                        else:
                            ip_id = randrange(65536)
                    else:
                        current = id_counters.get(responder)
                        if current is None:
                            current = randrange(65536)
                        if id_noise:
                            if inline_bits:
                                step = getrandbits(noise_bits)
                                while step >= id_noise:
                                    step = getrandbits(noise_bits)
                            else:
                                step = randrange(id_noise)
                            ip_id = (current + 1 + step) % 65536
                        else:
                            ip_id = (current + 1) % 65536
                        id_counters[responder] = ip_id
                    response = new_response(Response)
                    fields = response.__dict__
                    fields["kind"] = kind
                    fields["source"] = source
                    fields["probe"] = probe
                    fields["responder"] = responder
                    fields["ip_id"] = ip_id
                    fields["record_route"] = ()
                    append(response)
                else:
                    append(None)
            clock += n
            returned = int(np.count_nonzero(pids >= 0))
            silent = n - returned
        elif not bucket_live:
            # No token buckets anywhere: the NIL remap above already turned
            # every conditionally-silent pid into -1, so a non-negative pid
            # is *guaranteed* answered — no policy checks in the hot loop.
            for probe, pid in zip(probes, pid_list):
                if pid >= 0:
                    clock += 1
                    returned += 1
                    kind, source, responder, random_id, _ = plan_rows[pid]
                    if random_id:
                        if inline_bits:
                            ip_id = getrandbits(17)
                            while ip_id >= 65536:
                                ip_id = getrandbits(17)
                        else:
                            ip_id = randrange(65536)
                    else:
                        current = id_counters.get(responder)
                        if current is None:
                            current = randrange(65536)
                        if id_noise:
                            if inline_bits:
                                step = getrandbits(noise_bits)
                                while step >= id_noise:
                                    step = getrandbits(noise_bits)
                            else:
                                step = randrange(id_noise)
                            ip_id = (current + 1 + step) % 65536
                        else:
                            ip_id = (current + 1) % 65536
                        id_counters[responder] = ip_id
                    response = new_response(Response)
                    fields = response.__dict__
                    fields["kind"] = kind
                    fields["source"] = source
                    fields["probe"] = probe
                    fields["responder"] = responder
                    fields["ip_id"] = ip_id
                    fields["record_route"] = ()
                    append(response)
                elif pid == -2:
                    self.clock = clock
                    append(send(probe))
                    clock = self.clock
                else:
                    clock += 1
                    silent += 1
                    append(None)
        else:
            for probe, pid in zip(probes, pid_list):
                if pid >= 0:
                    clock += 1
                    kind, source, responder, random_id, draws = plan_rows[pid]
                    if (draws and not rate_allows(responder, clock)
                            or source is None):
                        silent += 1
                        append(None)
                        continue
                    returned += 1
                    if random_id:
                        if inline_bits:
                            ip_id = getrandbits(17)
                            while ip_id >= 65536:
                                ip_id = getrandbits(17)
                        else:
                            ip_id = randrange(65536)
                    else:
                        current = id_counters.get(responder)
                        if current is None:
                            current = randrange(65536)
                        if id_noise:
                            if inline_bits:
                                step = getrandbits(noise_bits)
                                while step >= id_noise:
                                    step = getrandbits(noise_bits)
                            else:
                                step = randrange(id_noise)
                            ip_id = (current + 1 + step) % 65536
                        else:
                            ip_id = (current + 1) % 65536
                        id_counters[responder] = ip_id
                    response = new_response(Response)
                    fields = response.__dict__
                    fields["kind"] = kind
                    fields["source"] = source
                    fields["probe"] = probe
                    fields["responder"] = responder
                    fields["ip_id"] = ip_id
                    fields["record_route"] = ()
                    append(response)
                elif pid == -2:
                    self.clock = clock
                    append(send(probe))
                    clock = self.clock
                else:
                    clock += 1
                    silent += 1
                    append(None)
        self.clock = clock
        stats.probes_sent += fast
        stats.path_cache_hits += fast
        stats.bulk_lookup_hits += fast
        stats.bulk_lookup_misses += n - fast
        stats.responses_returned += returned
        stats.silent_drops += silent
        return responses

    def _resolve_path(self, probe: Probe) -> Optional[ResolvedPath]:
        """Walk to the terminal hop ignoring the probe's TTL, with no side
        effects: no rate-limit draws, no PRNG consumption, no stats.  The
        static halves of every possible response (per-hop TTL-Exceeded and
        the terminal delivery) are precomputed into plans here.  Returns
        None when the flow crosses a per-packet load balancer with a real
        choice (the path is random per packet and must not be memoized)."""
        host = self.topology.host_at(probe.src)
        if host is None:
            raise ValueError(f"probe source {probe.src} is not a registered host")
        flow = FlowKey(src=probe.src, dst=probe.dst,
                       protocol=probe.protocol.value, flow_id=probe.flow_id)
        dest_subnet = self.topology.subnet_containing(probe.dst)

        current = self.topology.routers[host.gateway_router_id]
        incoming_address: Optional[int] = None
        entry_iface = current.interface_on(host.subnet_id)
        if entry_iface is not None:
            incoming_address = entry_iface.address

        router_ids: List[str] = []
        incoming: List[Optional[int]] = []
        stamps: List[Optional[int]] = []

        def done(terminal: PathTerminal, lan_subnet_id: Optional[str] = None
                 ) -> ResolvedPath:
            n = len(router_ids)
            hop_plans = tuple(
                self._plan_ttl_exceeded(probe, router_ids[i], incoming[i], host)
                for i in range(n))
            if terminal == PathTerminal.OWNS:
                terminal_plan = self._plan_direct(probe, router_ids[-1])
                expiry_limit = n - 1
                stamp_upto = n - 1
            elif terminal == PathTerminal.LAN:
                terminal_plan = self._plan_lan(probe, router_ids[-1],
                                               lan_subnet_id)
                expiry_limit = n
                stamp_upto = n
            else:
                terminal_plan = None
                expiry_limit = n
                stamp_upto = n
            return ResolvedPath(router_ids=tuple(router_ids),
                                incoming=tuple(incoming),
                                stamps=tuple(stamps),
                                terminal=terminal,
                                lan_subnet_id=lan_subnet_id,
                                hop_plans=hop_plans,
                                terminal_plan=terminal_plan,
                                expiry_limit=expiry_limit,
                                terminal_stamp_upto=stamp_upto)

        for _ in range(self.max_hops):
            router_ids.append(current.router_id)
            incoming.append(incoming_address)
            if current.owns(probe.dst):
                stamps.append(None)
                return done(PathTerminal.OWNS)
            if dest_subnet is not None and current.interface_on(dest_subnet.subnet_id):
                iface = current.interface_on(dest_subnet.subnet_id)
                stamps.append(iface.address if iface is not None else None)
                return done(PathTerminal.LAN, dest_subnet.subnet_id)
            if dest_subnet is None:
                stamps.append(None)
                return done(PathTerminal.NO_ROUTE)
            hops = self.routing.next_hops(current.router_id, dest_subnet.subnet_id)
            if not hops:
                stamps.append(None)
                return done(PathTerminal.NO_ROUTE)
            choice = self.balancer.choose_stable(current.router_id, hops, flow)
            if choice is None:
                return None
            via_iface = current.interface_on(choice.via_subnet_id)
            stamps.append(via_iface.address if via_iface is not None else None)
            next_router = self.topology.routers[choice.router_id]
            next_iface = next_router.interface_on(choice.via_subnet_id)
            incoming_address = next_iface.address if next_iface is not None else None
            current = next_router
        return done(PathTerminal.HOP_LIMIT)

    def _replay(self, probe: Probe, path: ResolvedPath,
                stamps: Optional[List[int]]) -> Optional[Response]:
        """Generate this probe's response from a memoized path.

        Mirrors :meth:`_walk` TTL accounting exactly: the terminal router
        does not decrement for an address it owns, but does before a LAN
        delivery / dead end.  The static response decision was precomputed
        into a plan; only the rate-limit bucket and IP-ID counter run live.
        """
        ttl = probe.ttl
        if ttl <= path.expiry_limit:
            if stamps is not None:
                self._fill_stamps(probe, path, ttl - 1, stamps)
            plan = path.hop_plans[ttl - 1]
        else:
            if stamps is not None:
                self._fill_stamps(probe, path, path.terminal_stamp_upto, stamps)
            plan = path.terminal_plan
        if plan is None:
            return None
        if plan.draws_bucket and not self.policy.rate_limit_allows(
                plan.responder, self.clock):
            return None
        if plan.source is None:
            return None
        return Response(kind=plan.kind, source=plan.source, probe=probe,
                        responder=plan.responder,
                        ip_id=self._next_ip_id(plan.responder, plan.ip_id_mode))

    def _plan_ttl_exceeded(self, probe: Probe, router_id: str,
                           incoming_address: Optional[int],
                           vantage: Host) -> Optional[ResponsePlan]:
        """Static half of :meth:`_ttl_exceeded` for one hop of a path."""
        if not self.policy.router_statically_responds(router_id, probe.protocol):
            return None
        router = self.topology.routers[router_id]
        config = router.indirect_config
        source: Optional[int]
        if config == IndirectConfig.NIL:
            source = None  # the walk consumes a token, then stays silent
        elif config == IndirectConfig.INCOMING:
            source = incoming_address
        elif config == IndirectConfig.SHORTEST_PATH:
            source = self.routing.egress_interface_toward(
                router_id, vantage.subnet_id)
        else:
            source = router.report_address()
        return ResponsePlan(kind=ResponseType.TTL_EXCEEDED, source=source,
                            responder=router_id, ip_id_mode=router.ip_id_mode,
                            draws_bucket=True)

    def _plan_direct(self, probe: Probe, router_id: str
                     ) -> Optional[ResponsePlan]:
        """Static half of :meth:`_direct_response` at the owning router."""
        subnet = self.topology.subnet_containing(probe.dst)
        if subnet is not None and self.policy.subnet_is_firewalled(subnet.subnet_id):
            return None
        if self.policy.interface_is_silent(probe.dst):
            return None
        if not self.policy.router_statically_responds(router_id, probe.protocol):
            return None
        router = self.topology.routers[router_id]
        source = None if router.direct_config == DirectConfig.NIL else probe.dst
        return ResponsePlan(kind=ALIVE_RESPONSES[probe.protocol], source=source,
                            responder=router_id, ip_id_mode=router.ip_id_mode,
                            draws_bucket=True)

    def _plan_lan(self, probe: Probe, last_router_id: str,
                  subnet_id: str) -> Optional[ResponsePlan]:
        """Static half of :meth:`_deliver_across_lan` past the last hop."""
        dest_host = self.topology.host_at(probe.dst)
        if dest_host is not None and dest_host.subnet_id == subnet_id:
            # _host_response: no router_responds call, so no bucket draw.
            if self.policy.subnet_is_firewalled(subnet_id):
                return None
            if self.policy.interface_is_silent(probe.dst):
                return None
            return ResponsePlan(kind=ALIVE_RESPONSES[probe.protocol],
                                source=probe.dst, responder=dest_host.host_id,
                                ip_id_mode=IpIdMode.SHARED, draws_bucket=False)
        iface = self.topology.interface_at(probe.dst)
        if iface is None or iface.subnet_id != subnet_id:
            # _unassigned_response
            if self.unassigned_behavior == UnassignedAddressBehavior.SILENT:
                return None
            if self.policy.subnet_is_firewalled(subnet_id):
                return None
            if not self.policy.router_statically_responds(last_router_id,
                                                          probe.protocol):
                return None
            router = self.topology.routers[last_router_id]
            own_iface = router.interface_on(subnet_id)
            source = own_iface.address if own_iface is not None else None
            return ResponsePlan(kind=ResponseType.HOST_UNREACHABLE,
                                source=source, responder=last_router_id,
                                ip_id_mode=router.ip_id_mode, draws_bucket=True)
        return self._plan_direct(probe, iface.router_id)

    def _fill_stamps(self, probe: Probe, path: ResolvedPath, upto: int,
                     stamps: Optional[List[int]]) -> None:
        """Record-route stamps collected before hop index ``upto``."""
        if stamps is None or not probe.record_route:
            return
        for stamp in path.stamps[:upto]:
            if stamp is None:
                continue
            if len(stamps) >= RECORD_ROUTE_SLOTS:
                return
            stamps.append(stamp)

    def _deliver_across_lan(self, probe: Probe, current: Router,
                            subnet_id: str, dest_host: Optional[Host]
                            ) -> Optional[Response]:
        """Final LAN hop: ``current`` is attached to the destination subnet."""
        if dest_host is not None and dest_host.subnet_id == subnet_id:
            self._log(probe, current.router_id, "deliver-host", dest_host.host_id)
            return self._host_response(probe, dest_host)
        iface = self.topology.interface_at(probe.dst)
        if iface is None or iface.subnet_id != subnet_id:
            self._log(probe, current.router_id, "unassigned", str(probe.dst))
            return self._unassigned_response(probe, current, subnet_id)
        target_router = self.topology.routers[iface.router_id]
        self._log(probe, target_router.router_id, "deliver", "lan")
        return self._direct_response(probe, target_router)

    def _stamp(self, probe: Probe, router: Router, via_subnet_id: str,
               stamps: Optional[List[int]]) -> None:
        """Record-route: a forwarding router stamps its outgoing interface
        (RFC 791, up to 9 slots) — the DisCarte data source."""
        if stamps is None or not probe.record_route:
            return
        if len(stamps) >= RECORD_ROUTE_SLOTS:
            return
        iface = router.interface_on(via_subnet_id)
        if iface is not None:
            stamps.append(iface.address)

    # -- response generation -------------------------------------------------

    def _next_ip_id(self, responder_id: str, mode: IpIdMode) -> int:
        """The IP identification value of the next packet ``responder_id``
        sends: a shared wrapping counter (with noise standing in for the
        router's other traffic) or a fresh random value."""
        if mode == IpIdMode.RANDOM:
            return self._ip_id_rng.randrange(65536)
        current = self._ip_id_counters.get(responder_id)
        if current is None:
            current = self._ip_id_rng.randrange(65536)
        step = 1 + (self._ip_id_rng.randrange(self._ip_id_noise)
                    if self._ip_id_noise else 0)
        value = (current + step) % 65536
        self._ip_id_counters[responder_id] = value
        return value

    def _direct_response(self, probe: Probe, router: Router) -> Optional[Response]:
        subnet = self.topology.subnet_containing(probe.dst)
        if subnet is not None and self.policy.subnet_is_firewalled(subnet.subnet_id):
            return None
        if self.policy.interface_is_silent(probe.dst):
            return None
        if not self.policy.router_responds(router.router_id, probe.protocol, self.clock):
            return None
        if router.direct_config == DirectConfig.NIL:
            return None
        return Response(kind=ALIVE_RESPONSES[probe.protocol], source=probe.dst,
                        probe=probe, responder=router.router_id,
                        ip_id=self._next_ip_id(router.router_id,
                                               router.ip_id_mode))

    def _host_response(self, probe: Probe, host: Host) -> Optional[Response]:
        subnet_id = host.subnet_id
        if self.policy.subnet_is_firewalled(subnet_id):
            return None
        if self.policy.interface_is_silent(probe.dst):
            return None
        return Response(kind=ALIVE_RESPONSES[probe.protocol], source=probe.dst,
                        probe=probe, responder=host.host_id,
                        ip_id=self._next_ip_id(host.host_id, IpIdMode.SHARED))

    def _ttl_exceeded(self, probe: Probe, router: Router,
                      incoming_address: Optional[int],
                      vantage: Host) -> Optional[Response]:
        if not self.policy.router_responds(router.router_id, probe.protocol, self.clock):
            return None
        source: Optional[int]
        if router.indirect_config == IndirectConfig.NIL:
            return None
        if router.indirect_config == IndirectConfig.INCOMING:
            source = incoming_address
        elif router.indirect_config == IndirectConfig.SHORTEST_PATH:
            source = self.routing.egress_interface_toward(
                router.router_id, vantage.subnet_id)
        else:
            source = router.report_address()
        if source is None:
            return None
        if self.policy.interface_is_silent(source):
            # A reticent interface still sources TTL-Exceeded packets; only
            # direct probes to it are filtered.  Keep the reply.
            pass
        return Response(kind=ResponseType.TTL_EXCEEDED, source=source,
                        probe=probe, responder=router.router_id,
                        ip_id=self._next_ip_id(router.router_id,
                                               router.ip_id_mode))

    def _unassigned_response(self, probe: Probe, router: Router,
                             subnet_id: str) -> Optional[Response]:
        if self.unassigned_behavior == UnassignedAddressBehavior.SILENT:
            return None
        if self.policy.subnet_is_firewalled(subnet_id):
            return None
        if not self.policy.router_responds(router.router_id, probe.protocol, self.clock):
            return None
        iface = router.interface_on(subnet_id)
        if iface is None:
            return None
        return Response(kind=ResponseType.HOST_UNREACHABLE, source=iface.address,
                        probe=probe, responder=router.router_id,
                        ip_id=self._next_ip_id(router.router_id,
                                               router.ip_id_mode))
