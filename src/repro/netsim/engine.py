"""The forwarding engine: hop-by-hop probe simulation.

This is the stand-in for the live Internet.  A probe injected at a vantage
host walks the routed path hop by hop with real TTL semantics: every
intermediate router decrements the TTL and, at zero, answers with an ICMP
TTL-Exceeded sourced according to its response configuration; the router
owning the destination address delivers and answers according to its direct
configuration.  Firewalls, silent interfaces, protocol bias and rate limits
are consulted through the :class:`~repro.netsim.responsiveness.ResponsePolicy`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from dataclasses import replace

from .packet import (
    ALIVE_RESPONSES,
    RECORD_ROUTE_SLOTS,
    Probe,
    Protocol,
    Response,
    ResponseType,
)
from .responsiveness import ResponsePolicy, fully_responsive
from .router import DirectConfig, IndirectConfig, IpIdMode, Router
from .routing import FlowKey, LoadBalancer, RoutingTable
from .topology import Host, Topology


class UnassignedAddressBehavior(enum.Enum):
    """What the last-hop router does for an address with no interface."""

    SILENT = "silent"
    HOST_UNREACHABLE = "host-unreachable"


@dataclass
class WireEvent:
    """One hop of a probe's journey, for debugging and white-box tests."""

    probe_id: int
    router_id: str
    action: str
    detail: str = ""


@dataclass
class EngineStats:
    """Counters the overhead benches read."""

    probes_sent: int = 0
    responses_returned: int = 0
    silent_drops: int = 0
    per_protocol: dict = field(default_factory=dict)
    #: Resolved-path fast-path accounting: a miss walks the topology and
    #: memoizes the path, a hit answers from the memo, an uncacheable probe
    #: belongs to a flow crossing a per-packet load balancer.
    path_cache_hits: int = 0
    path_cache_misses: int = 0
    path_cache_uncacheable: int = 0
    #: Batch-API accounting: calls to :meth:`Engine.send_many` and the
    #: probes they carried (each probe also counts in ``probes_sent``).
    batches: int = 0
    batched_probes: int = 0

    def record_probe(self, protocol: Protocol) -> None:
        self.probes_sent += 1
        self.per_protocol[protocol] = self.per_protocol.get(protocol, 0) + 1

    def snapshot(self) -> dict:
        """Flat JSON-able counters (benches, transport backend metrics)."""
        flat = {
            "engine_probes_sent": self.probes_sent,
            "engine_responses_returned": self.responses_returned,
            "engine_silent_drops": self.silent_drops,
            "engine_path_cache_hits": self.path_cache_hits,
            "engine_path_cache_misses": self.path_cache_misses,
            "engine_path_cache_uncacheable": self.path_cache_uncacheable,
            "engine_batches": self.batches,
            "engine_batched_probes": self.batched_probes,
        }
        for protocol, count in sorted(self.per_protocol.items(),
                                      key=lambda item: item[0].value):
            flat[f"engine_probes_{protocol.value}"] = count
        return flat


class PathTerminal(enum.Enum):
    """How a fully resolved path ends when the TTL never expires."""

    OWNS = "owns"            # last router owns the destination address
    LAN = "lan"              # last router delivers across the destination LAN
    NO_ROUTE = "no-route"    # forwarding dead-ends: silence
    HOP_LIMIT = "hop-limit"  # max_hops routers crossed: silence


class ResponsePlan(NamedTuple):
    """Precomputed static half of one response decision.

    Everything clock-independent — firewalls, silent interfaces, silent
    routers, protocol refusals, NIL configs and the reply source address —
    is resolved once per memoized path.  Only the rate-limit bucket draw and
    the IP-ID counter stay live at replay: a plan of None means the static
    checks already failed *before* the walk would have touched the bucket,
    while ``source=None`` means the walk consumes a token and then stays
    silent (a NIL config), so bucket state matches the walk exactly.
    """

    kind: ResponseType
    source: Optional[int]
    responder: str
    ip_id_mode: IpIdMode
    draws_bucket: bool


@dataclass(frozen=True)
class ResolvedPath:
    """The memoized router walk for one (src, dst, protocol, flow) flow.

    ``router_ids[i]`` is the i-th router the probe visits; ``incoming[i]``
    the address of the interface it arrived on (None at unknown entries);
    ``stamps[i]`` the record-route stamp the router adds when forwarding
    (None when it adds none).  ``hop_plans[i]`` is the response plan when
    the TTL expires at hop i and ``terminal_plan`` the plan past the last
    hop; ``expiry_limit`` is the largest TTL that still expires in transit.
    Rate limiters, IP-ID counters and the virtual clock are consulted live
    at replay, so cached and walked probes stay identical packet for packet.
    """

    router_ids: Tuple[str, ...]
    incoming: Tuple[Optional[int], ...]
    stamps: Tuple[Optional[int], ...]
    terminal: PathTerminal
    lan_subnet_id: Optional[str] = None
    hop_plans: Tuple[Optional[ResponsePlan], ...] = ()
    terminal_plan: Optional[ResponsePlan] = None
    expiry_limit: int = 0
    terminal_stamp_upto: int = 0


#: Cache sentinel: the flow crosses a per-packet balancer, never memoize it.
_UNCACHEABLE = None
_MISSING = object()


class Engine:
    """Injects probes into a topology and produces responses.

    The engine owns a virtual clock that ticks once per probe; rate limiters
    run on that clock, so behaviour is reproducible probe for probe.
    """

    def __init__(self, topology: Topology,
                 routing: Optional[RoutingTable] = None,
                 policy: Optional[ResponsePolicy] = None,
                 balancer: Optional[LoadBalancer] = None,
                 max_hops: int = 64,
                 unassigned_behavior: UnassignedAddressBehavior =
                 UnassignedAddressBehavior.SILENT,
                 keep_wire_log: bool = False,
                 seed: int = 0,
                 ip_id_noise: int = 8,
                 path_cache: bool = True):
        self.topology = topology
        self.routing = routing if routing is not None else RoutingTable(topology)
        self.policy = policy if policy is not None else fully_responsive()
        self.balancer = balancer if balancer is not None else LoadBalancer()
        self.max_hops = max_hops
        self.unassigned_behavior = unassigned_behavior
        self.clock = 0
        self.stats = EngineStats()
        self.wire_log: List[WireEvent] = []
        self._keep_wire_log = keep_wire_log
        # IP-ID state: per-responder shared counters (plus noise emulating
        # the router's other traffic) or per-packet random values.
        self._ip_id_rng = random.Random(seed ^ 0x1D5EED)
        self._ip_id_noise = max(0, ip_id_noise)
        self._ip_id_counters: Dict[str, int] = {}
        # Resolved-path fast path: (src, dst, protocol, flow_id) -> the
        # memoized router walk, or _UNCACHEABLE for per-packet flows.
        self.use_path_cache = path_cache
        # Keyed on the Protocol enum itself: enum identity hashing is
        # cheaper than the .value descriptor in the per-probe hot loops.
        self._path_cache: Dict[Tuple[int, int, Protocol, int],
                               Optional[ResolvedPath]] = {}

    # -- public API --------------------------------------------------------

    def send(self, probe: Probe) -> Optional[Response]:
        """Inject one probe; return the response seen at the vantage (or None)."""
        self.clock += 1
        self.stats.record_probe(probe.protocol)
        stamps: Optional[List[int]] = [] if probe.record_route else None
        if self.use_path_cache and not self._keep_wire_log:
            response = self._send_cached(probe, stamps)
        else:
            response = self._walk(probe, stamps)
        if response is not None and probe.record_route and stamps:
            response = replace(response, record_route=tuple(stamps))
        if response is None:
            self.stats.silent_drops += 1
        else:
            self.stats.responses_returned += 1
        return response

    def send_many(self, probes) -> List[Optional[Response]]:
        """Inject a batch of probes; responses positionally, None for silence.

        Packet-for-packet identical to calling :meth:`send` in a loop — the
        clock ticks once per probe in order, rate-limit buckets and IP-ID
        counters advance identically — but cache hits are answered in one
        tight loop that skips the per-call dispatch overhead.  This is the
        simulator's native half of the transport ``send_many`` API and what
        the ``batched`` bench lane measures.
        """
        stats = self.stats
        stats.batches += 1
        stats.batched_probes += len(probes)
        if not self.use_path_cache or self._keep_wire_log:
            return [self.send(probe) for probe in probes]

        responses: List[Optional[Response]] = []
        append = responses.append
        cache = self._path_cache
        per_protocol = stats.per_protocol
        rate_allows = self.policy.rate_limit_allows
        # The IP-ID draw is inlined below — same RNG calls in the same
        # order as _next_ip_id, without the per-response method dispatch.
        randrange = self._ip_id_rng.randrange
        id_counters = self._ip_id_counters
        id_noise = self._ip_id_noise
        random_mode = IpIdMode.RANDOM
        new_response = Response.__new__
        clock = self.clock
        fast = returned = silent = 0
        run_protocol = None  # run-length per-protocol accounting
        run_count = 0
        for probe in probes:
            path = cache.get((probe.src, probe.dst, probe.protocol,
                              probe.flow_id), _MISSING)
            if probe.record_route or path is _MISSING or path is _UNCACHEABLE:
                # Slow path: misses, uncacheable flows and record-route
                # probes take the ordinary send() with the shared clock.
                self.clock = clock
                append(self.send(probe))
                clock = self.clock
                continue
            clock += 1
            fast += 1
            protocol = probe.protocol
            if protocol is run_protocol:
                run_count += 1
            else:
                if run_count:
                    per_protocol[run_protocol] = (
                        per_protocol.get(run_protocol, 0) + run_count)
                run_protocol = protocol
                run_count = 1
            ttl = probe.ttl
            plan = (path.hop_plans[ttl - 1] if ttl <= path.expiry_limit
                    else path.terminal_plan)
            if plan is None or plan.source is None or (
                    plan.draws_bucket
                    and not rate_allows(plan.responder, clock)):
                silent += 1
                append(None)
                continue
            returned += 1
            responder = plan.responder
            if plan.ip_id_mode is random_mode:
                ip_id = randrange(65536)
            else:
                current = id_counters.get(responder)
                if current is None:
                    current = randrange(65536)
                step = 1 + (randrange(id_noise) if id_noise else 0)
                ip_id = (current + step) % 65536
                id_counters[responder] = ip_id
            # Frozen-dataclass bypass: Response.__init__ pays one
            # object.__setattr__ per field; assembling __dict__ directly is
            # the same object at a fraction of the cost.  Keep the key set
            # in lockstep with Response's fields.
            response = new_response(Response)
            fields = response.__dict__
            fields["kind"] = plan.kind
            fields["source"] = plan.source
            fields["probe"] = probe
            fields["responder"] = responder
            fields["ip_id"] = ip_id
            fields["record_route"] = ()
            append(response)
        if run_count:
            per_protocol[run_protocol] = (
                per_protocol.get(run_protocol, 0) + run_count)
        self.clock = clock
        stats.probes_sent += fast
        stats.path_cache_hits += fast
        stats.responses_returned += returned
        stats.silent_drops += silent
        return responses

    def clear_path_cache(self) -> None:
        """Forget every memoized path (e.g. after mutating the topology)."""
        self._path_cache.clear()

    def path_routers(self, src_host_id: str, dst: int) -> List[str]:
        """Ground-truth router path from a host toward ``dst`` (tests only).

        Uses flow id 0, so under per-flow balancing this is *a* stable path;
        under per-packet balancing it is one sample.
        """
        host = self.topology.hosts[src_host_id]
        flow = FlowKey(src=host.address, dst=dst, protocol="icmp", flow_id=0)
        path: List[str] = []
        current_id = host.gateway_router_id
        dest_subnet = self.topology.subnet_containing(dst)
        for _ in range(self.max_hops):
            path.append(current_id)
            router = self.topology.routers[current_id]
            if router.owns(dst):
                return path
            if dest_subnet is not None and router.interface_on(dest_subnet.subnet_id):
                iface = self.topology.interface_at(dst)
                if iface is None:
                    return path
                path.append(iface.router_id)
                return path
            if dest_subnet is None:
                return path
            hops = self.routing.next_hops(current_id, dest_subnet.subnet_id)
            if not hops:
                return path
            current_id = self.balancer.choose(current_id, hops, flow).router_id
        return path

    def hop_distance(self, src_host_id: str, dst: int) -> Optional[int]:
        """Ground-truth hop distance from a host to an interface address."""
        iface = self.topology.interface_at(dst)
        if iface is None:
            return None
        path = self.path_routers(src_host_id, dst)
        if not path or path[-1] != iface.router_id:
            return None
        return len(path)

    # -- internals ----------------------------------------------------------

    def _log(self, probe: Probe, router_id: str, action: str, detail: str = "") -> None:
        if self._keep_wire_log:
            self.wire_log.append(WireEvent(probe.probe_id, router_id, action, detail))

    def _walk(self, probe: Probe, stamps: Optional[List[int]] = None
              ) -> Optional[Response]:
        host = self.topology.host_at(probe.src)
        if host is None:
            raise ValueError(f"probe source {probe.src} is not a registered host")
        flow = FlowKey(src=probe.src, dst=probe.dst,
                       protocol=probe.protocol.value, flow_id=probe.flow_id)
        dest_subnet = self.topology.subnet_containing(probe.dst)
        dest_host = self.topology.host_at(probe.dst)

        current = self.topology.routers[host.gateway_router_id]
        incoming_address: Optional[int] = None
        entry_iface = current.interface_on(host.subnet_id)
        if entry_iface is not None:
            incoming_address = entry_iface.address
        ttl = probe.ttl

        for _ in range(self.max_hops):
            if current.owns(probe.dst):
                self._log(probe, current.router_id, "deliver")
                return self._direct_response(probe, current)

            ttl -= 1
            if ttl == 0:
                self._log(probe, current.router_id, "ttl-exceeded")
                return self._ttl_exceeded(probe, current, incoming_address, host)

            if dest_subnet is not None and current.interface_on(dest_subnet.subnet_id):
                self._stamp(probe, current, dest_subnet.subnet_id, stamps)
                return self._deliver_across_lan(probe, current, dest_subnet.subnet_id,
                                                dest_host)
            if dest_subnet is None:
                self._log(probe, current.router_id, "no-route")
                return None
            hops = self.routing.next_hops(current.router_id, dest_subnet.subnet_id)
            if not hops:
                self._log(probe, current.router_id, "no-route")
                return None
            choice = self.balancer.choose(current.router_id, hops, flow)
            self._stamp(probe, current, choice.via_subnet_id, stamps)
            next_router = self.topology.routers[choice.router_id]
            via_iface = next_router.interface_on(choice.via_subnet_id)
            incoming_address = via_iface.address if via_iface is not None else None
            self._log(probe, current.router_id, "forward",
                      f"-> {choice.router_id} via {choice.via_subnet_id}")
            current = next_router
        self._log(probe, current.router_id, "hop-limit")
        return None

    # -- resolved-path fast path ---------------------------------------------

    def _send_cached(self, probe: Probe, stamps: Optional[List[int]]
                     ) -> Optional[Response]:
        """Answer from the memoized path when one exists, else walk + memoize.

        Per-packet-balanced flows are detected on first contact and marked
        uncacheable; they take the full walk forever after.  Response
        generation (policy checks, rate-limit buckets, IP-ID counters) always
        runs live against the current clock — only the forwarding decision
        sequence is memoized.
        """
        key = (probe.src, probe.dst, probe.protocol, probe.flow_id)
        entry = self._path_cache.get(key, _MISSING)
        if entry is _MISSING:
            self.stats.path_cache_misses += 1
            response = self._walk(probe, stamps)
            self._path_cache[key] = self._resolve_path(probe)
            return response
        if entry is _UNCACHEABLE:
            self.stats.path_cache_uncacheable += 1
            return self._walk(probe, stamps)
        self.stats.path_cache_hits += 1
        return self._replay(probe, entry, stamps)

    def _resolve_path(self, probe: Probe) -> Optional[ResolvedPath]:
        """Walk to the terminal hop ignoring the probe's TTL, with no side
        effects: no rate-limit draws, no PRNG consumption, no stats.  The
        static halves of every possible response (per-hop TTL-Exceeded and
        the terminal delivery) are precomputed into plans here.  Returns
        None when the flow crosses a per-packet load balancer with a real
        choice (the path is random per packet and must not be memoized)."""
        host = self.topology.host_at(probe.src)
        if host is None:
            raise ValueError(f"probe source {probe.src} is not a registered host")
        flow = FlowKey(src=probe.src, dst=probe.dst,
                       protocol=probe.protocol.value, flow_id=probe.flow_id)
        dest_subnet = self.topology.subnet_containing(probe.dst)

        current = self.topology.routers[host.gateway_router_id]
        incoming_address: Optional[int] = None
        entry_iface = current.interface_on(host.subnet_id)
        if entry_iface is not None:
            incoming_address = entry_iface.address

        router_ids: List[str] = []
        incoming: List[Optional[int]] = []
        stamps: List[Optional[int]] = []

        def done(terminal: PathTerminal, lan_subnet_id: Optional[str] = None
                 ) -> ResolvedPath:
            n = len(router_ids)
            hop_plans = tuple(
                self._plan_ttl_exceeded(probe, router_ids[i], incoming[i], host)
                for i in range(n))
            if terminal == PathTerminal.OWNS:
                terminal_plan = self._plan_direct(probe, router_ids[-1])
                expiry_limit = n - 1
                stamp_upto = n - 1
            elif terminal == PathTerminal.LAN:
                terminal_plan = self._plan_lan(probe, router_ids[-1],
                                               lan_subnet_id)
                expiry_limit = n
                stamp_upto = n
            else:
                terminal_plan = None
                expiry_limit = n
                stamp_upto = n
            return ResolvedPath(router_ids=tuple(router_ids),
                                incoming=tuple(incoming),
                                stamps=tuple(stamps),
                                terminal=terminal,
                                lan_subnet_id=lan_subnet_id,
                                hop_plans=hop_plans,
                                terminal_plan=terminal_plan,
                                expiry_limit=expiry_limit,
                                terminal_stamp_upto=stamp_upto)

        for _ in range(self.max_hops):
            router_ids.append(current.router_id)
            incoming.append(incoming_address)
            if current.owns(probe.dst):
                stamps.append(None)
                return done(PathTerminal.OWNS)
            if dest_subnet is not None and current.interface_on(dest_subnet.subnet_id):
                iface = current.interface_on(dest_subnet.subnet_id)
                stamps.append(iface.address if iface is not None else None)
                return done(PathTerminal.LAN, dest_subnet.subnet_id)
            if dest_subnet is None:
                stamps.append(None)
                return done(PathTerminal.NO_ROUTE)
            hops = self.routing.next_hops(current.router_id, dest_subnet.subnet_id)
            if not hops:
                stamps.append(None)
                return done(PathTerminal.NO_ROUTE)
            choice = self.balancer.choose_stable(current.router_id, hops, flow)
            if choice is None:
                return None
            via_iface = current.interface_on(choice.via_subnet_id)
            stamps.append(via_iface.address if via_iface is not None else None)
            next_router = self.topology.routers[choice.router_id]
            next_iface = next_router.interface_on(choice.via_subnet_id)
            incoming_address = next_iface.address if next_iface is not None else None
            current = next_router
        return done(PathTerminal.HOP_LIMIT)

    def _replay(self, probe: Probe, path: ResolvedPath,
                stamps: Optional[List[int]]) -> Optional[Response]:
        """Generate this probe's response from a memoized path.

        Mirrors :meth:`_walk` TTL accounting exactly: the terminal router
        does not decrement for an address it owns, but does before a LAN
        delivery / dead end.  The static response decision was precomputed
        into a plan; only the rate-limit bucket and IP-ID counter run live.
        """
        ttl = probe.ttl
        if ttl <= path.expiry_limit:
            if stamps is not None:
                self._fill_stamps(probe, path, ttl - 1, stamps)
            plan = path.hop_plans[ttl - 1]
        else:
            if stamps is not None:
                self._fill_stamps(probe, path, path.terminal_stamp_upto, stamps)
            plan = path.terminal_plan
        if plan is None:
            return None
        if plan.draws_bucket and not self.policy.rate_limit_allows(
                plan.responder, self.clock):
            return None
        if plan.source is None:
            return None
        return Response(kind=plan.kind, source=plan.source, probe=probe,
                        responder=plan.responder,
                        ip_id=self._next_ip_id(plan.responder, plan.ip_id_mode))

    def _plan_ttl_exceeded(self, probe: Probe, router_id: str,
                           incoming_address: Optional[int],
                           vantage: Host) -> Optional[ResponsePlan]:
        """Static half of :meth:`_ttl_exceeded` for one hop of a path."""
        if not self.policy.router_statically_responds(router_id, probe.protocol):
            return None
        router = self.topology.routers[router_id]
        config = router.indirect_config
        source: Optional[int]
        if config == IndirectConfig.NIL:
            source = None  # the walk consumes a token, then stays silent
        elif config == IndirectConfig.INCOMING:
            source = incoming_address
        elif config == IndirectConfig.SHORTEST_PATH:
            source = self.routing.egress_interface_toward(
                router_id, vantage.subnet_id)
        else:
            source = router.report_address()
        return ResponsePlan(kind=ResponseType.TTL_EXCEEDED, source=source,
                            responder=router_id, ip_id_mode=router.ip_id_mode,
                            draws_bucket=True)

    def _plan_direct(self, probe: Probe, router_id: str
                     ) -> Optional[ResponsePlan]:
        """Static half of :meth:`_direct_response` at the owning router."""
        subnet = self.topology.subnet_containing(probe.dst)
        if subnet is not None and self.policy.subnet_is_firewalled(subnet.subnet_id):
            return None
        if self.policy.interface_is_silent(probe.dst):
            return None
        if not self.policy.router_statically_responds(router_id, probe.protocol):
            return None
        router = self.topology.routers[router_id]
        source = None if router.direct_config == DirectConfig.NIL else probe.dst
        return ResponsePlan(kind=ALIVE_RESPONSES[probe.protocol], source=source,
                            responder=router_id, ip_id_mode=router.ip_id_mode,
                            draws_bucket=True)

    def _plan_lan(self, probe: Probe, last_router_id: str,
                  subnet_id: str) -> Optional[ResponsePlan]:
        """Static half of :meth:`_deliver_across_lan` past the last hop."""
        dest_host = self.topology.host_at(probe.dst)
        if dest_host is not None and dest_host.subnet_id == subnet_id:
            # _host_response: no router_responds call, so no bucket draw.
            if self.policy.subnet_is_firewalled(subnet_id):
                return None
            if self.policy.interface_is_silent(probe.dst):
                return None
            return ResponsePlan(kind=ALIVE_RESPONSES[probe.protocol],
                                source=probe.dst, responder=dest_host.host_id,
                                ip_id_mode=IpIdMode.SHARED, draws_bucket=False)
        iface = self.topology.interface_at(probe.dst)
        if iface is None or iface.subnet_id != subnet_id:
            # _unassigned_response
            if self.unassigned_behavior == UnassignedAddressBehavior.SILENT:
                return None
            if self.policy.subnet_is_firewalled(subnet_id):
                return None
            if not self.policy.router_statically_responds(last_router_id,
                                                          probe.protocol):
                return None
            router = self.topology.routers[last_router_id]
            own_iface = router.interface_on(subnet_id)
            source = own_iface.address if own_iface is not None else None
            return ResponsePlan(kind=ResponseType.HOST_UNREACHABLE,
                                source=source, responder=last_router_id,
                                ip_id_mode=router.ip_id_mode, draws_bucket=True)
        return self._plan_direct(probe, iface.router_id)

    def _fill_stamps(self, probe: Probe, path: ResolvedPath, upto: int,
                     stamps: Optional[List[int]]) -> None:
        """Record-route stamps collected before hop index ``upto``."""
        if stamps is None or not probe.record_route:
            return
        for stamp in path.stamps[:upto]:
            if stamp is None:
                continue
            if len(stamps) >= RECORD_ROUTE_SLOTS:
                return
            stamps.append(stamp)

    def _deliver_across_lan(self, probe: Probe, current: Router,
                            subnet_id: str, dest_host: Optional[Host]
                            ) -> Optional[Response]:
        """Final LAN hop: ``current`` is attached to the destination subnet."""
        if dest_host is not None and dest_host.subnet_id == subnet_id:
            self._log(probe, current.router_id, "deliver-host", dest_host.host_id)
            return self._host_response(probe, dest_host)
        iface = self.topology.interface_at(probe.dst)
        if iface is None or iface.subnet_id != subnet_id:
            self._log(probe, current.router_id, "unassigned", str(probe.dst))
            return self._unassigned_response(probe, current, subnet_id)
        target_router = self.topology.routers[iface.router_id]
        self._log(probe, target_router.router_id, "deliver", "lan")
        return self._direct_response(probe, target_router)

    def _stamp(self, probe: Probe, router: Router, via_subnet_id: str,
               stamps: Optional[List[int]]) -> None:
        """Record-route: a forwarding router stamps its outgoing interface
        (RFC 791, up to 9 slots) — the DisCarte data source."""
        if stamps is None or not probe.record_route:
            return
        if len(stamps) >= RECORD_ROUTE_SLOTS:
            return
        iface = router.interface_on(via_subnet_id)
        if iface is not None:
            stamps.append(iface.address)

    # -- response generation -------------------------------------------------

    def _next_ip_id(self, responder_id: str, mode: IpIdMode) -> int:
        """The IP identification value of the next packet ``responder_id``
        sends: a shared wrapping counter (with noise standing in for the
        router's other traffic) or a fresh random value."""
        if mode == IpIdMode.RANDOM:
            return self._ip_id_rng.randrange(65536)
        current = self._ip_id_counters.get(responder_id)
        if current is None:
            current = self._ip_id_rng.randrange(65536)
        step = 1 + (self._ip_id_rng.randrange(self._ip_id_noise)
                    if self._ip_id_noise else 0)
        value = (current + step) % 65536
        self._ip_id_counters[responder_id] = value
        return value

    def _direct_response(self, probe: Probe, router: Router) -> Optional[Response]:
        subnet = self.topology.subnet_containing(probe.dst)
        if subnet is not None and self.policy.subnet_is_firewalled(subnet.subnet_id):
            return None
        if self.policy.interface_is_silent(probe.dst):
            return None
        if not self.policy.router_responds(router.router_id, probe.protocol, self.clock):
            return None
        if router.direct_config == DirectConfig.NIL:
            return None
        return Response(kind=ALIVE_RESPONSES[probe.protocol], source=probe.dst,
                        probe=probe, responder=router.router_id,
                        ip_id=self._next_ip_id(router.router_id,
                                               router.ip_id_mode))

    def _host_response(self, probe: Probe, host: Host) -> Optional[Response]:
        subnet_id = host.subnet_id
        if self.policy.subnet_is_firewalled(subnet_id):
            return None
        if self.policy.interface_is_silent(probe.dst):
            return None
        return Response(kind=ALIVE_RESPONSES[probe.protocol], source=probe.dst,
                        probe=probe, responder=host.host_id,
                        ip_id=self._next_ip_id(host.host_id, IpIdMode.SHARED))

    def _ttl_exceeded(self, probe: Probe, router: Router,
                      incoming_address: Optional[int],
                      vantage: Host) -> Optional[Response]:
        if not self.policy.router_responds(router.router_id, probe.protocol, self.clock):
            return None
        source: Optional[int]
        if router.indirect_config == IndirectConfig.NIL:
            return None
        if router.indirect_config == IndirectConfig.INCOMING:
            source = incoming_address
        elif router.indirect_config == IndirectConfig.SHORTEST_PATH:
            source = self.routing.egress_interface_toward(
                router.router_id, vantage.subnet_id)
        else:
            source = router.report_address()
        if source is None:
            return None
        if self.policy.interface_is_silent(source):
            # A reticent interface still sources TTL-Exceeded packets; only
            # direct probes to it are filtered.  Keep the reply.
            pass
        return Response(kind=ResponseType.TTL_EXCEEDED, source=source,
                        probe=probe, responder=router.router_id,
                        ip_id=self._next_ip_id(router.router_id,
                                               router.ip_id_mode))

    def _unassigned_response(self, probe: Probe, router: Router,
                             subnet_id: str) -> Optional[Response]:
        if self.unassigned_behavior == UnassignedAddressBehavior.SILENT:
            return None
        if self.policy.subnet_is_firewalled(subnet_id):
            return None
        if not self.policy.router_responds(router.router_id, probe.protocol, self.clock):
            return None
        iface = router.interface_on(subnet_id)
        if iface is None:
            return None
        return Response(kind=ResponseType.HOST_UNREACHABLE, source=iface.address,
                        probe=probe, responder=router.router_id,
                        ip_id=self._next_ip_id(router.router_id,
                                               router.ip_id_mode))
