"""Network substrate: a deterministic router-level Internet simulator.

The subpackage stands in for the live Internet the paper probes.  It models
routers, subnets, CIDR addressing, shortest-path routing with ECMP,
TTL-scoped forwarding, router response configurations, firewalls and rate
limiting — everything a scapy-based tracenet would observe from outside.
"""

from .addressing import (
    Prefix,
    common_prefix_length,
    enclosing_prefix,
    format_ip,
    ip,
    mate30,
    mate31,
    parse_ip,
)
from .builder import PrefixAllocator, TopologyBuilder
from .dynamics import (
    MutationSchedule,
    NetworkDynamics,
    ScheduledMutation,
)
from .engine import (
    Engine,
    EngineStats,
    PathTerminal,
    ResolvedPath,
    UnassignedAddressBehavior,
)
from .iface import Interface
from .packet import DEFAULT_TTL, Probe, Protocol, Response, ResponseType
from .responsiveness import ResponsePolicy, fully_responsive
from .router import DirectConfig, IndirectConfig, IpIdMode, Router
from .routing import FlowKey, LoadBalancer, LoadBalancingMode, NextHop, RoutingTable
from .serialize import (
    load_scenario,
    load_topology,
    policy_from_dict,
    policy_to_dict,
    save_scenario,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from .subnet import Subnet
from .topology import Host, Topology, TopologyError

__all__ = [
    "DEFAULT_TTL",
    "DirectConfig",
    "Engine",
    "EngineStats",
    "FlowKey",
    "Host",
    "IndirectConfig",
    "Interface",
    "IpIdMode",
    "LoadBalancer",
    "LoadBalancingMode",
    "MutationSchedule",
    "NetworkDynamics",
    "NextHop",
    "ScheduledMutation",
    "Prefix",
    "PrefixAllocator",
    "Probe",
    "Protocol",
    "Response",
    "PathTerminal",
    "ResolvedPath",
    "ResponsePolicy",
    "ResponseType",
    "Router",
    "RoutingTable",
    "Subnet",
    "Topology",
    "TopologyBuilder",
    "TopologyError",
    "UnassignedAddressBehavior",
    "common_prefix_length",
    "enclosing_prefix",
    "format_ip",
    "fully_responsive",
    "ip",
    "load_scenario",
    "load_topology",
    "mate30",
    "mate31",
    "parse_ip",
    "policy_from_dict",
    "policy_to_dict",
    "save_scenario",
    "save_topology",
    "topology_from_dict",
    "topology_to_dict",
]
