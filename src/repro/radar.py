"""Radar mode: continuous re-surveys of a network that keeps changing.

"A Radar for the Internet" (Latapy, Magnien & Ouédraogo) reframes topology
measurement from *one map* to a *sequence of maps* whose deltas carry the
signal.  :class:`RadarRunner` is tracenet's version of that instrument: a
full survey round, then periodic re-survey rounds that re-probe only the
**dirty** portion of the target set — destinations plausibly affected by
the topology mutations observed since the previous round — and carry every
clean trace forward unchanged.

Determinism: dirtiness derives exclusively from the
:class:`~repro.events.TopologyMutated` stream (which itself derives from
the mutation schedule, never from apply outcomes), so a live radar run and
a journal replay probe the identical targets in the identical order and
serialize identical round archives and diffs.  With no churn at all, every
round's archive is byte-identical to an ordinary repeated survey's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .core.results import TraceResult
from .core.tracenet import TraceNET
from .events import SubnetRetracted, TopologyMutated
from .mapping.diff import ArchiveDiff, diff_archives
from .mapping.store import CollectionArchive
from .netsim.addressing import Prefix

#: Mutation kinds whose blast radius is the whole routing plane — every
#: target is dirty, not just the ones inside a named prefix.
GLOBAL_KINDS = frozenset({"ecmp"})


class _MutationLog:
    """Bus sink accumulating TopologyMutated events between rounds."""

    interests = (TopologyMutated,)

    def __init__(self):
        self.pending: List[TopologyMutated] = []

    def __call__(self, event) -> None:
        if isinstance(event, TopologyMutated):
            self.pending.append(event)

    def drain(self) -> List[TopologyMutated]:
        drained, self.pending = self.pending, []
        return drained


def mutation_prefixes(mutations: Sequence[TopologyMutated]
                      ) -> Optional[List[Prefix]]:
    """The CIDR blocks a batch of mutations touched.

    Returns None when any mutation's blast radius is global (an ECMP
    reconvergence, or a mutation carrying no prefix information) — the
    caller must treat the whole target set as dirty.
    """
    prefixes: Set[str] = set()
    for event in mutations:
        if event.kind in GLOBAL_KINDS:
            return None
        detail = event.detail or {}
        texts = []
        for key in ("prefix", "old_prefix", "new_prefix"):
            if detail.get(key):
                texts.append(detail[key])
        if detail.get("prefixes"):
            texts.extend(detail["prefixes"])
        if not texts:
            return None  # unknown blast radius: be conservative
        prefixes.update(texts)
    return [Prefix.parse(text) for text in sorted(prefixes)]


@dataclass
class RadarRound:
    """One round of the radar: what was probed and what changed."""

    index: int
    full: bool
    probed_targets: List[int]
    archive: CollectionArchive
    diff: Optional[ArchiveDiff] = None
    mutations_seen: int = 0

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "full": self.full,
            "probed_targets": len(self.probed_targets),
            "mutations_seen": self.mutations_seen,
            "traces": len(self.archive.traces),
            "subnets": len(self.archive.subnets),
            "degraded": sum(1 for t in self.archive.traces if t.degraded),
            "diff": self.diff.to_dict() if self.diff is not None else None,
        }


@dataclass
class RadarResult:
    """The full radar run: the sequence of maps plus their deltas."""

    rounds: List[RadarRound] = field(default_factory=list)

    @property
    def final_archive(self) -> CollectionArchive:
        return self.rounds[-1].archive

    @property
    def diffs(self) -> List[ArchiveDiff]:
        return [r.diff for r in self.rounds if r.diff is not None]

    def to_dict(self) -> Dict:
        return {"rounds": [r.to_dict() for r in self.rounds]}


class RadarRunner:
    """Drives a collector through repeated re-survey rounds.

    Args:
        tool: the collector.  Its event bus must be the same bus the
            :class:`~repro.transport.MutatingTransport` (if any) emits
            :class:`~repro.events.TopologyMutated` on — that stream is the
            radar's change detector.
        targets: the survey destination set, fixed across rounds.
        rounds: total rounds including the initial full survey.
        incremental: re-probe only dirty prefixes on rounds > 0.  False
            re-probes everything every round (the naive radar).
        idle_ticks: simulated ticks to idle the transport between rounds
            (rate-limit buckets refill; probe-count epochs do *not*
            advance — mutations fire on probes, not idle time).
    """

    def __init__(self, tool: TraceNET, targets: Sequence[int],
                 rounds: int = 3, incremental: bool = True,
                 idle_ticks: int = 0):
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.tool = tool
        self.targets = list(targets)
        self.rounds = rounds
        self.incremental = incremental
        self.idle_ticks = idle_ticks
        self._log = _MutationLog()
        tool.events.subscribe(self._log)

    # -- the rounds --------------------------------------------------------

    def run(self) -> RadarResult:
        result = RadarResult()
        prev_round: Optional[RadarRound] = None
        for index in range(self.rounds):
            if index > 0 and self.idle_ticks > 0:
                idle = getattr(self.tool.transport, "idle", None)
                if idle is not None:
                    idle(self.idle_ticks)
            prev_round = self._run_round(index, prev_round)
            result.rounds.append(prev_round)
        return result

    def _run_round(self, index: int,
                   prev: Optional[RadarRound]) -> RadarRound:
        mutations = self._log.drain()
        if index == 0 or not self.incremental:
            probed = list(self.targets)
            full = True
        else:
            probed = self._dirty_targets(mutations, prev.archive)
            full = False
        if index > 0 and probed:
            self._evict_dirty(mutations)

        fresh: Dict[int, TraceResult] = {}
        for target in probed:
            fresh[target] = self.tool.trace(target)

        carried = ({t.destination: t for t in prev.archive.traces}
                   if prev is not None else {})
        traces = [fresh.get(target, carried.get(target))
                  for target in self.targets]
        archive = CollectionArchive(
            vantage=self.tool.vantage_host_id,
            subnets=list(self.tool.collected_subnets),
            traces=[t for t in traces if t is not None],
            metadata={"done_targets": sorted(set(self.targets))},
        )
        diff = None
        if prev is not None:
            diff = diff_archives(prev.archive, archive)
            self._retract(diff)
        return RadarRound(index=index, full=full, probed_targets=probed,
                          archive=archive, diff=diff,
                          mutations_seen=len(mutations))

    # -- dirtiness ---------------------------------------------------------

    def _dirty_targets(self, mutations: Sequence[TopologyMutated],
                       previous: CollectionArchive) -> List[int]:
        """Targets whose previous trace a mutation could have invalidated.

        A target is dirty when a mutated prefix contains the destination
        itself, any hop of its previous trace, or any member of a subnet
        that trace observed — or when its previous trace was already
        degraded (re-validate) or missing.  Order follows the target list,
        so re-probing is deterministic.
        """
        if not mutations:
            dirty_blocks: List[Prefix] = []
        else:
            blocks = mutation_prefixes(mutations)
            if blocks is None:
                return list(self.targets)
            dirty_blocks = blocks
        previous_traces = {t.destination: t for t in previous.traces}
        dirty: List[int] = []
        for target in self.targets:
            trace = previous_traces.get(target)
            if trace is None or trace.degraded:
                dirty.append(target)
                continue
            if dirty_blocks and self._trace_touches(trace, dirty_blocks):
                dirty.append(target)
        return dirty

    @staticmethod
    def _trace_touches(trace: TraceResult,
                       blocks: Sequence[Prefix]) -> bool:
        for block in blocks:
            if trace.destination in block:
                return True
        for address in trace.addresses:
            for block in blocks:
                if address in block:
                    return True
        return False

    def _evict_dirty(self, mutations: Sequence[TopologyMutated]) -> None:
        """Forget registered subnets the mutations may have rewritten."""
        blocks = mutation_prefixes(mutations) if mutations else []
        if blocks is None:
            # Global blast radius: routing changed but subnets did not —
            # the registry stays valid, only the traces need refreshing.
            return
        if not blocks:
            return
        self.tool.evict_subnets(
            lambda subnet: any(
                subnet.prefix.overlaps(block) or any(m in block
                                                     for m in subnet.members)
                for block in blocks))

    def _retract(self, diff: ArchiveDiff) -> None:
        events = self.tool.events
        if not events:
            return
        for change in diff.vanished:
            events.emit(SubnetRetracted(prefix=change.prefix,
                                        reason="not-reobserved"))


def run_radar(tool: TraceNET, targets: Sequence[int], rounds: int = 3,
              incremental: bool = True, idle_ticks: int = 0) -> RadarResult:
    """Convenience wrapper mirroring :func:`repro.runner`'s helpers."""
    return RadarRunner(tool, targets, rounds=rounds,
                       incremental=incremental,
                       idle_ticks=idle_ticks).run()


__all__ = [
    "GLOBAL_KINDS",
    "RadarResult",
    "RadarRound",
    "RadarRunner",
    "mutation_prefixes",
    "run_radar",
]
