"""Vantage workers: the probing half of the distributed survey service.

A :class:`VantageWorker` is one measurement vantage in the fleet.  Its
loop is deliberately dumb — everything stateful lives in the coordinator:

1. ask the coordinator for a shard lease;
2. rebuild the collector from the leased :class:`~repro.parallel.ShardSpec`
   (transport construction stays behind the :class:`ProbeTransport` seam:
   the worker never sees an Engine, only what ``spec.build_tool()``
   returns, so a live-network worker would differ only in its spec);
3. survey the shard through the ordinary checkpointing
   :class:`~repro.runner.SurveyRunner` via
   :func:`repro.parallel.run_shard`, streaming session events and
   incremental registry snapshots back to the coordinator and
   heartbeating on every completed target;
4. deliver the shard payload; repeat until no work is left.

Workers run as daemon threads under :class:`ServiceFleet`.  Threads (not
processes) because the coordinator protocol is plain method calls and the
deterministic simulator is pure Python — a socketed or multiprocess fleet
would implement the same four coordinator calls over a wire; the lease
fencing (:class:`~repro.service.coordinator.StaleLeaseError`) and the
checkpoint-aligned commit protocol are designed for exactly that.

Worker death is first-class: ``fail_after_targets`` makes a worker raise
:class:`WorkerCrashed` mid-shard and die *silently* — no fail() call, no
cleanup — which is how the tests and the CI smoke lane exercise the
missed-heartbeat → re-lease → checkpoint-resume recovery path end to end.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..events import CheckpointWritten, SessionEvent, SurveyProgressed, \
    TraceFinished, event_to_dict
from ..metrics import MetricsRegistry, MetricsSink
from ..parallel import run_radar_shard, run_shard
from .coordinator import Coordinator, ShardTask, StaleLeaseError

#: Flush the event stream to the coordinator at least this often.
DEFAULT_STREAM_EVERY = 256


class WorkerCrashed(RuntimeError):
    """Injected worker death (simulates a killed vantage process)."""


class StreamingEventSink:
    """Buffers serialized session events; flushes batches to a callback.

    The worker-side half of the streaming protocol.  Events are serialized
    in emission order; the buffer flushes when it reaches ``every`` events
    and, crucially, on every :class:`CheckpointWritten` — synchronously,
    before the survey proceeds — so the coordinator's commit log always
    holds the events backing any checkpoint that exists on disk.

    The sink also maintains its own :class:`MetricsRegistry` fed through a
    private :class:`MetricsSink`; each flush ships the registry's current
    ``to_dict()`` as the incremental snapshot — a monotone, deterministic
    view of the shard so far that the coordinator exposes for live
    introspection (``tracenet jobs`` while a survey runs).
    """

    #: The flush callback raises StaleLeaseError to fence a dead worker —
    #: control flow, not a sink defect; the bus must not swallow it.
    propagate_errors = True

    def __init__(self, flush: Callable[[List[Dict], Dict], None],
                 every: int = DEFAULT_STREAM_EVERY):
        if every < 1:
            raise ValueError(f"flush cadence must be >= 1, got {every}")
        self._flush = flush
        self.every = every
        self.buffer: List[Dict] = []
        self.registry = MetricsRegistry()
        self._metrics_sink = MetricsSink(self.registry)
        self.flushes = 0

    def __call__(self, event: SessionEvent) -> None:
        self._metrics_sink(event)
        self.buffer.append(event_to_dict(event))
        if len(self.buffer) >= self.every or isinstance(event,
                                                        CheckpointWritten):
            self.flush()

    def flush(self) -> None:
        if not self.buffer:
            return
        batch, self.buffer = self.buffer, []
        self.flushes += 1
        self._flush(batch, self.registry.to_dict())


class VantageWorker:
    """One vantage point of the fleet: lease, survey, stream, repeat.

    Args:
        worker_id: stable identity used in leases and logs.
        coordinator: the coordinator this worker serves.
        poll_interval: idle sleep between lease attempts.
        stream_every: event-stream flush cadence (checkpoints always
            flush regardless).
        fail_after_targets: when set, the worker raises
            :class:`WorkerCrashed` after completing this many targets of
            its current shard and dies without telling the coordinator —
            fault-injection for the re-lease/resume path.
    """

    def __init__(self, worker_id: str, coordinator: Coordinator,
                 poll_interval: float = 0.02,
                 stream_every: int = DEFAULT_STREAM_EVERY,
                 fail_after_targets: Optional[int] = None):
        self.worker_id = worker_id
        self.coordinator = coordinator
        self.poll_interval = poll_interval
        self.stream_every = stream_every
        self.fail_after_targets = fail_after_targets
        self.crashed = False
        self.shards_completed = 0
        self.shards_abandoned = 0

    # -- the fleet loop --------------------------------------------------

    def run(self) -> None:
        """Serve until every job is terminal (thread entry point)."""
        while True:
            if self.crashed:
                return
            task = self.coordinator.lease(self.worker_id)
            if task is None:
                if not self.coordinator.unfinished():
                    return
                time.sleep(self.poll_interval)
                continue
            try:
                self._run_task(task)
            except StaleLeaseError:
                # The coordinator gave this shard away (we were presumed
                # dead).  Abandon it: the new holder's results win.
                self.shards_abandoned += 1
                continue
            except WorkerCrashed:
                # Die silently, exactly like a killed process: no fail()
                # report, the lease expires by missed heartbeats.
                self.crashed = True
                return

    # -- one leased shard ------------------------------------------------

    def _run_task(self, task: ShardTask) -> None:
        stream = StreamingEventSink(
            lambda events, metrics: self.coordinator.stream(
                self.worker_id, task.job_id, task.shard_index,
                task.attempt, events, metrics),
            every=self.stream_every)
        sinks = [stream, self._heartbeat_sink(task)]
        if self.fail_after_targets is not None:
            sinks.append(_CrashAfter(self.fail_after_targets))
        try:
            if task.radar is not None:
                payload = run_radar_shard(
                    task.spec, task.shard_index, task.targets, task.radar,
                    sinks=sinks,
                    # Same central-audit / worker-clock split as below.
                    audit=False,
                    spans=True)
            else:
                payload = run_shard(
                    task.spec, task.shard_index, task.targets,
                    task.checkpoint_path, task.checkpoint_every,
                    sinks=sinks,
                    seed_subnets=task.seed_subnets,
                    # Violations are judged once, centrally, over the job's
                    # committed event stream.
                    audit=False,
                    # Ship the worker's clocked span tree in the payload; the
                    # deterministic tree is the coordinator's, from the
                    # committed journal.
                    spans=True)
        except (StaleLeaseError, WorkerCrashed):
            raise
        except Exception as exc:
            self.coordinator.fail(self.worker_id, task.job_id,
                                  task.shard_index, task.attempt,
                                  f"{type(exc).__name__}: {exc}")
            return
        stream.flush()
        self.coordinator.complete(self.worker_id, task.job_id,
                                  task.shard_index, task.attempt, payload)
        self.shards_completed += 1

    def _heartbeat_sink(self, task: ShardTask):
        # Radar shards run through RadarRunner, which emits no
        # SurveyProgressed/CheckpointWritten — heartbeat per finished
        # trace instead so long radar jobs don't get reaped mid-round.
        kinds = ((SurveyProgressed, CheckpointWritten, TraceFinished)
                 if task.radar is not None
                 else (SurveyProgressed, CheckpointWritten))

        def sink(event: SessionEvent) -> None:
            if isinstance(event, kinds):
                self.coordinator.heartbeat(self.worker_id, task.job_id,
                                           task.shard_index, task.attempt)
        # StaleLeaseError from a fenced heartbeat is control flow, not a
        # sink defect — it must reach the worker loop.
        sink.propagate_errors = True
        return sink


class _CrashAfter:
    """Event sink that kills the worker after N completed targets."""

    #: The injected WorkerCrashed must escape the bus's sink isolation.
    propagate_errors = True

    def __init__(self, targets: int):
        self.targets = targets

    def __call__(self, event: SessionEvent) -> None:
        if isinstance(event, SurveyProgressed) and \
                event.completed >= self.targets:
            raise WorkerCrashed(
                f"injected crash after {event.completed} targets")


class ServiceFleet:
    """Runs a coordinator and its vantage workers on local threads.

    The fleet loop owns liveness: it reaps expired leases at a cadence
    well below the coordinator's heartbeat timeout, aborts cleanly when
    every worker has died with work remaining, and enforces a wall-clock
    timeout so a wedged fleet cannot hang a service (or a CI lane)
    forever.
    """

    def __init__(self, coordinator: Coordinator,
                 workers: Sequence[VantageWorker]):
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        self.coordinator = coordinator
        self.workers = list(workers)

    def run(self, reap_interval: float = 0.05,
            timeout: float = 300.0,
            on_tick: Optional[Callable[[], None]] = None) -> None:
        """Drive the fleet until every job reaches a terminal state.

        ``on_tick`` is invoked once per reap-loop iteration (and once
        after the loop exits) — the hook ``tracenet serve --health-out``
        uses to publish the coordinator's health exposition while the
        fleet runs.
        """
        threads = [
            threading.Thread(target=worker.run, daemon=True,
                             name=f"vantage-{worker.worker_id}")
            for worker in self.workers
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + timeout
        try:
            while self.coordinator.unfinished():
                self.coordinator.reap()
                if on_tick is not None:
                    on_tick()
                if not any(thread.is_alive() for thread in threads):
                    self.coordinator.abort_unfinished(
                        "every worker exited with work remaining")
                    break
                if time.monotonic() > deadline:
                    self.coordinator.abort_unfinished(
                        f"fleet timed out after {timeout:.0f}s")
                    break
                time.sleep(reap_interval)
        finally:
            for thread in threads:
                thread.join(timeout=5.0)
            if on_tick is not None:
                on_tick()


__all__ = [
    "DEFAULT_STREAM_EVERY",
    "ServiceFleet",
    "StreamingEventSink",
    "VantageWorker",
    "WorkerCrashed",
]
