"""The distributed survey service.

This package turns the single-process sharded runner
(:mod:`repro.parallel`) into a coordinator/worker service: a
:class:`Coordinator` accepts :class:`SurveyJob`s onto a durable
:class:`JobQueue`, leases shards to a fleet of :class:`VantageWorker`s
that stream session events and incremental metrics snapshots back, and
merges the delivered shards into one :class:`JobResult` whose archive is
equivalent to a serial run.  Worker death is survived by missed-heartbeat
reaping, re-leasing, and per-shard checkpoint resume; discovered subnets
are shared fleet-wide through a
:class:`~repro.mapping.store.SubnetDedupeStore`.

Layering: the service sits strictly *above* the collector — it imports
:mod:`repro.parallel`, :mod:`repro.events`, :mod:`repro.metrics` and
:mod:`repro.mapping`, and nothing in the sealed core imports it.
"""

from .coordinator import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    Coordinator,
    JobResult,
    ShardLease,
    ShardTask,
    StaleLeaseError,
)
from .jobs import (
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    InvalidTransition,
    JobQueue,
    JobState,
    SurveyJob,
    shard_attempt_summary,
)
from .worker import (
    DEFAULT_STREAM_EVERY,
    ServiceFleet,
    StreamingEventSink,
    VantageWorker,
    WorkerCrashed,
)

__all__ = [
    "Coordinator",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_STREAM_EVERY",
    "InvalidTransition",
    "JobQueue",
    "JobResult",
    "JobState",
    "ServiceFleet",
    "ShardLease",
    "ShardTask",
    "StaleLeaseError",
    "StreamingEventSink",
    "SurveyJob",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "VantageWorker",
    "WorkerCrashed",
    "shard_attempt_summary",
]
