"""Survey jobs and the durable job queue.

A :class:`SurveyJob` is the unit of work the distributed survey service
accepts: one serialized scenario (:class:`~repro.parallel.ShardSpec`), a
target list, and scheduling options (shard count, checkpoint cadence,
tenant, per-shard re-lease budget).  Jobs move through a small state
machine::

    queued -> running -> merging -> done
       \\         \\          \\
        +---------+----------+--> failed

The :class:`JobQueue` keeps the job table in memory and journals every
submission and state transition to an append-only JSONL file, so a
restarted coordinator rebuilds exactly the queue it crashed with.  Jobs
that were mid-flight (``running``/``merging``) at the crash are demoted
back to ``queued`` by :meth:`JobQueue.recover` — re-scheduling is cheap
because every shard resumes from its own checkpoint file.

The queue itself is not thread-safe; the coordinator serializes access
under its own lock.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..parallel import ShardSpec


class JobState(str, Enum):
    """Lifecycle of one survey job."""

    QUEUED = "queued"      # accepted, no shard leased yet
    RUNNING = "running"    # at least one shard leased to a worker
    MERGING = "merging"    # every shard delivered; merging payloads
    DONE = "done"          # merged result available
    FAILED = "failed"      # gave up (see SurveyJob.error)


#: States a job can move to from each state.  ``running``/``merging`` may
#: fall back to ``queued`` only through crash recovery.
VALID_TRANSITIONS: Dict[JobState, frozenset] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.FAILED}),
    JobState.RUNNING: frozenset({JobState.MERGING, JobState.FAILED,
                                 JobState.QUEUED}),
    JobState.MERGING: frozenset({JobState.DONE, JobState.FAILED,
                                 JobState.QUEUED}),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
}

TERMINAL_STATES = (JobState.DONE, JobState.FAILED)


class InvalidTransition(ValueError):
    """A job was asked to move along an edge the state machine forbids."""


@dataclass
class SurveyJob:
    """One accepted survey: scenario + targets + scheduling options."""

    job_id: str
    spec: ShardSpec
    targets: List[int]
    shards: int = 2
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 25
    tenant: str = "default"
    #: How many times one shard may be (re-)leased before the job fails.
    max_attempts: int = 3
    state: JobState = JobState.QUEUED
    error: Optional[str] = None
    metadata: Dict = field(default_factory=dict)
    #: Radar-job config (rounds, churn_*, drop_rate, incremental) — when
    #: set, the job runs as one radar shard over the whole target list
    #: (rounds carry state, so the slice cannot split) and the result
    #: carries the per-round archive diffs.
    radar: Optional[Dict] = None

    def scenario_fingerprint(self) -> str:
        """Content hash of the scenario this job probes.

        Keys the shared :class:`~repro.mapping.store.SubnetDedupeStore`
        scope: two jobs may share discovered subnets only when they would
        rebuild byte-identical networks (same topology, policy, seeds and
        collector options).
        """
        spec_payload = dataclasses.asdict(self.spec)
        if self.radar is not None:
            # A radar job probes a *mutating* network: its discoveries must
            # not seed (or be seeded by) plain surveys of the same scenario.
            payload = json.dumps({"spec": spec_payload, "radar": self.radar},
                                 sort_keys=True)
        else:
            payload = json.dumps(spec_payload, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict:
        """Plain-JSON representation, invertible by :meth:`from_dict`."""
        return {
            "job_id": self.job_id,
            "spec": dataclasses.asdict(self.spec),
            "targets": list(self.targets),
            "shards": self.shards,
            "checkpoint_dir": self.checkpoint_dir,
            "checkpoint_every": self.checkpoint_every,
            "tenant": self.tenant,
            "max_attempts": self.max_attempts,
            "state": self.state.value,
            "error": self.error,
            "metadata": dict(self.metadata),
            "radar": dict(self.radar) if self.radar is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SurveyJob":
        return cls(
            job_id=payload["job_id"],
            spec=ShardSpec(**payload["spec"]),
            targets=list(payload["targets"]),
            shards=payload.get("shards", 2),
            checkpoint_dir=payload.get("checkpoint_dir"),
            checkpoint_every=payload.get("checkpoint_every", 25),
            tenant=payload.get("tenant", "default"),
            max_attempts=payload.get("max_attempts", 3),
            state=JobState(payload.get("state", "queued")),
            error=payload.get("error"),
            metadata=payload.get("metadata", {}),
            radar=payload.get("radar"),
        )


class JobQueue:
    """In-memory job table with an append-only JSONL journal.

    Args:
        journal_path: when given, every submission and state transition is
            appended there, and an existing journal is replayed on open —
            the durability contract that lets ``tracenet submit`` and
            ``tracenet serve`` run as separate processes.  ``None`` keeps
            the queue purely in memory (unit tests, inline fleets).
    """

    def __init__(self, journal_path: Optional[str] = None):
        self.journal_path = journal_path
        self.jobs: Dict[str, SurveyJob] = {}
        if journal_path is not None and os.path.exists(journal_path):
            self._replay(journal_path)

    # -- the public queue API -------------------------------------------

    def submit(self, job: SurveyJob) -> SurveyJob:
        """Accept a job (journaled before it becomes visible)."""
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        self._append({"record": "job", "job": job.to_dict()})
        self.jobs[job.job_id] = job
        return job

    def get(self, job_id: str) -> SurveyJob:
        return self.jobs[job_id]

    def queued(self) -> List[SurveyJob]:
        """Jobs awaiting scheduling, in submission order."""
        return [job for job in self.jobs.values()
                if job.state is JobState.QUEUED]

    def unfinished(self) -> List[SurveyJob]:
        """Jobs not yet in a terminal state, in submission order."""
        return [job for job in self.jobs.values()
                if job.state not in TERMINAL_STATES]

    def transition(self, job_id: str, state: JobState,
                   error: Optional[str] = None) -> SurveyJob:
        """Move a job along the state machine (journaled)."""
        job = self.jobs[job_id]
        if state not in VALID_TRANSITIONS[job.state]:
            raise InvalidTransition(
                f"job {job_id}: {job.state.value} -> {state.value}")
        self._append({"record": "state", "job_id": job_id,
                      "state": state.value, "error": error})
        job.state = state
        job.error = error
        return job

    def recover(self) -> List[SurveyJob]:
        """Demote jobs that were mid-flight when the last serve died.

        ``running``/``merging`` jobs are put back to ``queued`` so the
        next fleet re-schedules them; their shard checkpoints make the
        re-run resume instead of restart.  Returns the demoted jobs.
        """
        demoted = []
        for job in self.jobs.values():
            if job.state in (JobState.RUNNING, JobState.MERGING):
                self.transition(job.job_id, JobState.QUEUED)
                demoted.append(job)
        return demoted

    def next_job_id(self, hint: str = "job") -> str:
        """A fresh sequential job id (``job-0001`` style)."""
        index = len(self.jobs) + 1
        while f"{hint}-{index:04d}" in self.jobs:
            index += 1
        return f"{hint}-{index:04d}"

    # -- journal internals ----------------------------------------------

    def _append(self, record: Dict) -> None:
        if self.journal_path is None:
            return
        parent = os.path.dirname(self.journal_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.journal_path, "a", encoding="utf-8") as fp:
            fp.write(json.dumps(record, sort_keys=True))
            fp.write("\n")
            fp.flush()

    def _replay(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("record")
                if kind == "job":
                    job = SurveyJob.from_dict(record["job"])
                    self.jobs[job.job_id] = job
                elif kind == "state":
                    job = self.jobs.get(record["job_id"])
                    if job is not None:
                        job.state = JobState(record["state"])
                        job.error = record.get("error")
                else:
                    raise ValueError(
                        f"unknown job-queue record kind {kind!r}")


def shard_attempt_summary(attempts: Dict[int, int]) -> str:
    """Human summary of per-shard lease attempts (``tracenet jobs``)."""
    releases = sum(count - 1 for count in attempts.values() if count > 1)
    if not releases:
        return "no re-leases"
    noisy = ", ".join(f"shard {index}: {count} attempts"
                      for index, count in sorted(attempts.items())
                      if count > 1)
    return f"{releases} re-lease(s) ({noisy})"


__all__ = [
    "InvalidTransition",
    "JobQueue",
    "JobState",
    "SurveyJob",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "shard_attempt_summary",
]
