"""The survey coordinator: leases, heartbeats, streaming, fault recovery.

The coordinator is the long-running brain of the distributed survey
service.  It owns the :class:`~repro.service.jobs.JobQueue`, splits each
accepted job into shards (:func:`repro.parallel.shard_targets`), and hands
shards to vantage workers as **leases**.  Everything a worker does flows
back through four calls — :meth:`Coordinator.lease`,
:meth:`Coordinator.heartbeat`, :meth:`Coordinator.stream` and
:meth:`Coordinator.complete`/:meth:`Coordinator.fail` — each of which is
**fenced**: the call must present the lease's worker id and attempt
number, so a worker that was declared dead and re-leased cannot corrupt
the job when it comes back from a long GC pause (its calls raise
:class:`StaleLeaseError` and it abandons the shard).

Fault tolerance is heartbeat-driven: workers heartbeat on every survey
target, :meth:`Coordinator.reap` expires leases whose heartbeat is older
than ``heartbeat_timeout`` and puts the shard back on the pending list
with ``attempt + 1``.  The next worker to lease it resumes from the
shard's checkpoint file (the ordinary :class:`~repro.runner.SurveyRunner`
resume path), so re-delivery costs only the targets since the last
checkpoint.  A shard that exceeds ``SurveyJob.max_attempts`` fails the
job with an error naming the shard, its target slice and its checkpoint.

**Event streaming and the commit log.**  Workers stream serialized
session events in order.  The coordinator treats
:class:`~repro.events.CheckpointWritten` markers as commit points: events
up to the last marker in the stream are *committed* — appended to the
job's event journal, fed through the coordinator's own
:class:`~repro.metrics.MetricsSink` and probe-economy auditor — while the
tail stays pending.  When a shard completes, its remaining tail commits;
when its lease expires, the tail is discarded.  The committed stream
therefore describes exactly the *effective* execution (work whose results
survive in some checkpoint or payload), with no duplicates and no holes:
a crashed attempt's committed targets are precisely the ones its
successor skips on resume.  Live streamed totals and an offline replay of
the job journal (:func:`repro.metrics.registry_from_events`) agree by
construction — the live == replay parity contract, preserved across
worker death.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Sequence

from ..events import (
    CheckpointWritten,
    CounterSink,
    EventBus,
    event_from_dict,
    event_to_dict,
)
from ..mapping.store import CollectionArchive, SubnetDedupeStore
from ..metrics import MetricsRegistry, MetricsSink, ProbeEconomyAuditor
from ..parallel import (
    ShardOutcome,
    ShardSpec,
    merge_outcomes,
    outcome_from_payload,
    shard_targets,
)
from ..probing.budget import ProbeStats
from ..probing.stopset import StopSet
from ..tracing import Span
from ..tracing.service import ATTEMPT_KEY, SHARD_KEY, ServiceSpanAssembler
from .jobs import JobQueue, JobState, SurveyJob

#: Leases whose heartbeat is older than this many seconds are reaped.
DEFAULT_HEARTBEAT_TIMEOUT = 5.0


class StaleLeaseError(RuntimeError):
    """A worker acted on a lease the coordinator no longer recognizes.

    Raised on heartbeat/stream/complete/fail calls whose (worker, attempt)
    no longer holds the shard — the fencing that keeps a worker presumed
    dead (and already replaced) from corrupting the job if it wakes up.
    The worker's correct response is to abandon the shard silently.
    """


@dataclass
class ShardLease:
    """One shard currently delegated to one worker."""

    job_id: str
    shard_index: int
    worker_id: str
    attempt: int
    leased_at: float
    last_heartbeat: float


@dataclass
class ShardTask:
    """What a worker receives when a lease is granted."""

    job_id: str
    shard_index: int
    attempt: int
    spec: ShardSpec
    targets: List[int]
    checkpoint_path: Optional[str]
    checkpoint_every: int
    #: Serialized subnets already collected by the fleet for this
    #: scenario — seeds the worker's reuse registry (shared dedupe).
    seed_subnets: List[Dict] = field(default_factory=list)
    #: Radar-job config; the worker runs the radar primitive instead of
    #: the checkpointing survey runner when this is set.
    radar: Optional[Dict] = None


@dataclass
class JobResult:
    """The merged outcome of one finished job."""

    job: SurveyJob
    archive: CollectionArchive
    stats: ProbeStats
    #: The coordinator's streamed registry: a pure function of the
    #: committed event stream, equal to an offline replay of
    #: ``events_path`` — *not* the sum of shard payload registries, which
    #: cover only the attempts that completed (work lost to worker deaths
    #: appears here, in the committed stream, but in no payload).
    metrics: MetricsRegistry
    stop_set: Optional[StopSet]
    shards: List[ShardOutcome]
    #: Lease attempts per shard index (a value > 1 means a re-lease).
    attempts: Dict[int, int]
    event_counts: Dict[str, int]
    events_path: Optional[str] = None
    #: Job → shard-lease → trace span tree assembled from the committed
    #: stream; its deterministic serialization equals
    #: ``span_tree_from_journal(events_path)`` (lease stamps are timing
    #: plane only).
    spans: Optional[Span] = None
    #: Shard index → the worker's own timed span tree (dict form; worker
    #: clocks share no timebase with the coordinator's).
    worker_spans: Dict[int, Dict] = field(default_factory=dict)
    #: Radar-job round summary + per-round archive diffs
    #: (``RadarResult.to_dict()``); None for ordinary survey jobs.
    radar: Optional[Dict] = None


class _JobRuntime:
    """Coordinator-internal live state of one running job."""

    def __init__(self, job: SurveyJob, slices: List[List[int]],
                 events_path: Optional[str], clock=time.monotonic):
        self.job = job
        self.clock = clock
        self.slices = slices
        self.pending: List[int] = list(range(len(slices)))
        self.leases: Dict[int, ShardLease] = {}
        self.payloads: Dict[int, Dict] = {}
        self.outcomes: Dict[int, ShardOutcome] = {}
        self.attempts: Dict[int, int] = {index: 0
                                         for index in range(len(slices))}
        #: Uncommitted streamed events per shard (serialized payloads).
        self.uncommitted: Dict[int, List[Dict]] = {}
        #: Latest streamed registry snapshot per shard (live introspection).
        self.live_snapshots: Dict[int, Dict] = {}
        self.events_path = events_path
        self._events_fp: Optional[IO] = None
        self.committed_events: List[Dict] = []
        # The coordinator-side event pipeline: metrics sink + counter sink
        # + journal writer + ONE auditor for the whole job (shards run
        # with audit=False so violations are judged centrally, once).
        self.registry = MetricsRegistry()
        self.bus = EventBus()
        self.bus.subscribe(MetricsSink(self.registry))
        self.counter = CounterSink()
        self.bus.subscribe(self.counter)
        self.bus.subscribe(self._journal_sink)
        # The job span tree, fed in journal order (the deterministic-plane
        # twin of the committed event journal).  Lease lifecycle stamps
        # (timing plane) are applied by the coordinator's lease/complete/
        # reap paths; the root's wall-clock extent is stamped manually so
        # the lease *children* stay untimed on the coordinator side — the
        # worker's own clocked tree rides in the shard payload instead.
        self.spans = ServiceSpanAssembler()
        self.spans.root.start = clock()
        self._committing: Optional[tuple] = None
        self.bus.subscribe(self._span_sink)
        self.auditor = ProbeEconomyAuditor(self.bus)
        self.bus.subscribe(self.auditor)

    def _span_sink(self, event) -> None:
        if self._committing is not None:
            self.spans.feed_event(event, *self._committing)

    def _journal_sink(self, event) -> None:
        payload = event_to_dict(event)
        if self._committing is not None:
            shard_index, attempt = self._committing
            payload[SHARD_KEY] = shard_index
            payload[ATTEMPT_KEY] = attempt
        self.committed_events.append(payload)
        if self.events_path is None:
            return
        if self._events_fp is None:
            parent = os.path.dirname(self.events_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._events_fp = open(self.events_path, "w", encoding="utf-8")
        self._events_fp.write(json.dumps(payload, sort_keys=True))
        self._events_fp.write("\n")

    def commit(self, shard_index: int, payloads: Sequence[Dict]) -> None:
        """Feed committed events through the pipeline, in stream order.

        ``_committing`` carries each payload's lease annotation through
        the dispatch: the journal sink re-attaches it to the record it
        writes and the span sink demuxes on it — including for events the
        *coordinator* originates mid-dispatch (the auditor's nested
        :class:`~repro.events.OverheadViolation` re-emits), which inherit
        the annotation of the committed event that triggered them.
        """
        for payload in payloads:
            self._committing = (payload.get(SHARD_KEY, shard_index),
                                payload.get(ATTEMPT_KEY, 1))
            try:
                self.bus.emit(event_from_dict(payload))
            finally:
                self._committing = None
        if self._events_fp is not None:
            self._events_fp.flush()

    def close(self) -> None:
        if self._events_fp is not None:
            self._events_fp.close()
            self._events_fp = None


class Coordinator:
    """Accepts survey jobs and drives a fleet of vantage workers.

    Args:
        queue: the (possibly journal-backed) job queue; a fresh in-memory
            queue by default.  Mid-flight jobs found in a durable queue
            are demoted back to ``queued`` (crash recovery).
        store: the shared subnet dedupe store; a fresh one by default.
        work_dir: when set, per-job artifacts land under
            ``<work_dir>/<job_id>/`` — shard checkpoints (unless the job
            names its own directory) and the committed event journal.
        heartbeat_timeout: seconds without a heartbeat before a lease is
            considered dead and its shard re-leased.
        clock: injectable monotonic clock (tests).
    """

    def __init__(self, queue: Optional[JobQueue] = None,
                 store: Optional[SubnetDedupeStore] = None,
                 work_dir: Optional[str] = None,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 clock=time.monotonic):
        self.queue = queue if queue is not None else JobQueue()
        self.store = store if store is not None else SubnetDedupeStore()
        self.work_dir = work_dir
        self.heartbeat_timeout = heartbeat_timeout
        self.clock = clock
        self._lock = threading.RLock()
        self._runtimes: Dict[str, _JobRuntime] = {}
        self._results: Dict[str, JobResult] = {}
        self.queue.recover()

    # -- job intake ------------------------------------------------------

    def submit(self, spec: ShardSpec, targets: Sequence[int],
               shards: int = 2, checkpoint_dir: Optional[str] = None,
               checkpoint_every: int = 25, tenant: str = "default",
               max_attempts: int = 3,
               job_id: Optional[str] = None) -> SurveyJob:
        """Accept one survey job; returns it in ``queued`` state."""
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        with self._lock:
            job = SurveyJob(
                job_id=job_id or self.queue.next_job_id(),
                spec=spec,
                targets=list(targets),
                shards=shards,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                tenant=tenant,
                max_attempts=max_attempts,
            )
            return self.queue.submit(job)

    def jobs(self) -> List[SurveyJob]:
        with self._lock:
            return list(self.queue.jobs.values())

    def unfinished(self) -> bool:
        """True while any job still needs scheduling, work, or merging."""
        with self._lock:
            return bool(self.queue.unfinished())

    def result(self, job_id: str) -> JobResult:
        """The merged result of a ``done`` job (KeyError otherwise)."""
        with self._lock:
            return self._results[job_id]

    def health_registry(self) -> MetricsRegistry:
        """Fleet health telemetry as a Prometheus-renderable registry.

        A point-in-time operational surface, rebuilt per call: job counts
        by state, queue depth, pending shards per running job, active
        lease count, and per-lease age / heartbeat lag (the reap
        predictor: a lag approaching ``heartbeat_timeout`` is a worker
        about to be declared dead).  Operational, not archival — nothing
        here participates in the replay-parity contract.
        """
        registry = MetricsRegistry()
        registry.describe("service_jobs", "Jobs by lifecycle state")
        registry.describe("service_queue_depth",
                          "Jobs accepted but not yet activated")
        registry.describe("service_shards_pending",
                          "Shards awaiting a lease, per running job")
        registry.describe("service_leases_active",
                          "Shard leases currently held by workers")
        registry.describe("service_lease_age_seconds",
                          "Seconds since each active lease was granted")
        registry.describe("service_heartbeat_lag_seconds",
                          "Seconds since each active lease last heartbeat")
        now = self.clock()
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self.queue.jobs.values():
                counts[job.state.value] = counts.get(job.state.value, 0) + 1
            for state in JobState:
                registry.set_gauge("service_jobs",
                                   counts.get(state.value, 0),
                                   state=state.value)
            registry.set_gauge("service_queue_depth",
                               len(self.queue.queued()))
            active = 0
            for job_id, runtime in self._runtimes.items():
                if runtime.job.state is JobState.RUNNING:
                    registry.set_gauge("service_shards_pending",
                                       len(runtime.pending), job=job_id)
                for lease in runtime.leases.values():
                    active += 1
                    labels = {"job": job_id,
                              "shard": str(lease.shard_index)}
                    registry.set_gauge("service_lease_age_seconds",
                                       max(0.0, now - lease.leased_at),
                                       **labels)
                    registry.set_gauge("service_heartbeat_lag_seconds",
                                       max(0.0, now - lease.last_heartbeat),
                                       **labels)
            registry.set_gauge("service_leases_active", active)
        return registry

    # -- the worker-facing API -------------------------------------------

    def lease(self, worker_id: str) -> Optional[ShardTask]:
        """Grant the next pending shard to ``worker_id`` (None when idle).

        Prefers shards of already-running jobs (FIFO by submission);
        activates the next queued job only when nothing is pending.
        """
        with self._lock:
            runtime = self._next_pending_runtime()
            if runtime is None:
                return None
            job = runtime.job
            shard_index = runtime.pending.pop(0)
            runtime.attempts[shard_index] += 1
            now = self.clock()
            runtime.leases[shard_index] = ShardLease(
                job_id=job.job_id,
                shard_index=shard_index,
                worker_id=worker_id,
                attempt=runtime.attempts[shard_index],
                leased_at=now,
                last_heartbeat=now,
            )
            runtime.uncommitted[shard_index] = []
            runtime.spans.stamp(shard_index, runtime.attempts[shard_index],
                                start=now)
            return ShardTask(
                job_id=job.job_id,
                shard_index=shard_index,
                attempt=runtime.attempts[shard_index],
                spec=job.spec,
                targets=list(runtime.slices[shard_index]),
                checkpoint_path=self._checkpoint_path(job, shard_index),
                checkpoint_every=job.checkpoint_every,
                # Radar shards must rebuild from the spec alone: seeding the
                # reuse registry with fleet discoveries would make a
                # re-leased attempt diverge from the first one.
                seed_subnets=([] if job.radar is not None
                              else self.store.snapshot(
                                  scope=job.scenario_fingerprint())),
                radar=(dict(job.radar)
                       if job.radar is not None else None),
            )

    def heartbeat(self, worker_id: str, job_id: str, shard_index: int,
                  attempt: int) -> None:
        """Refresh a lease (fenced; raises :class:`StaleLeaseError`)."""
        with self._lock:
            lease = self._check_lease(worker_id, job_id, shard_index,
                                      attempt)
            lease.last_heartbeat = self.clock()

    def stream(self, worker_id: str, job_id: str, shard_index: int,
               attempt: int, events: Sequence[Dict],
               metrics: Optional[Dict] = None) -> None:
        """Ingest a batch of streamed events (and a registry snapshot).

        Events accumulate per shard; everything up to (and including) the
        last :class:`CheckpointWritten` marker in the accumulated stream
        commits immediately — the marker proves the corresponding results
        are durable in the shard checkpoint, so a later crash cannot
        invalidate them.  The tail past the last marker stays pending
        until the shard completes (commit) or its lease expires (discard).
        """
        with self._lock:
            lease = self._check_lease(worker_id, job_id, shard_index,
                                      attempt)
            lease.last_heartbeat = self.clock()
            runtime = self._runtimes[job_id]
            buffer = runtime.uncommitted.setdefault(shard_index, [])
            # Annotate at intake: every record carries the lease that
            # produced it into the commit log (and the span assembler).
            buffer.extend({**payload, SHARD_KEY: shard_index,
                           ATTEMPT_KEY: attempt} for payload in events)
            if metrics is not None:
                runtime.live_snapshots[shard_index] = metrics
            cut = _last_checkpoint_marker(buffer)
            if cut is not None:
                runtime.commit(shard_index, buffer[:cut + 1])
                del buffer[:cut + 1]

    def complete(self, worker_id: str, job_id: str, shard_index: int,
                 attempt: int, payload: Dict) -> None:
        """Accept a finished shard's payload (fenced), maybe merge the job."""
        with self._lock:
            self._check_lease(worker_id, job_id, shard_index, attempt)
            runtime = self._runtimes[job_id]
            del runtime.leases[shard_index]
            tail = runtime.uncommitted.pop(shard_index, [])
            runtime.commit(shard_index, tail)
            runtime.spans.stamp(shard_index, attempt, end=self.clock())
            runtime.payloads[shard_index] = payload
            runtime.outcomes[shard_index] = outcome_from_payload(
                shard_index, runtime.slices[shard_index], payload,
                attempt=attempt)
            # Publish the shard's discoveries so later shards skip them.
            self.store.publish_archive(
                runtime.outcomes[shard_index].archive,
                scope=runtime.job.scenario_fingerprint())
            if not runtime.pending and not runtime.leases:
                self._merge(runtime)

    def fail(self, worker_id: str, job_id: str, shard_index: int,
             attempt: int, error: str) -> None:
        """A worker reports a shard exception: requeue or fail the job."""
        with self._lock:
            self._check_lease(worker_id, job_id, shard_index, attempt)
            runtime = self._runtimes[job_id]
            del runtime.leases[shard_index]
            runtime.uncommitted.pop(shard_index, None)
            runtime.spans.stamp(shard_index, attempt, end=self.clock())
            self._requeue_or_fail(runtime, shard_index, error)

    def reap(self, now: Optional[float] = None) -> List[ShardLease]:
        """Expire leases with missed heartbeats; re-lease their shards.

        Returns the expired leases.  Call this from the fleet loop (or a
        monitor thread) at a cadence well below ``heartbeat_timeout``.
        """
        now = self.clock() if now is None else now
        expired: List[ShardLease] = []
        with self._lock:
            for runtime in list(self._runtimes.values()):
                if runtime.job.state is not JobState.RUNNING:
                    continue
                for shard_index, lease in list(runtime.leases.items()):
                    if now - lease.last_heartbeat < self.heartbeat_timeout:
                        continue
                    expired.append(lease)
                    del runtime.leases[shard_index]
                    # Discard the attempt's uncommitted tail: its results
                    # never reached a checkpoint, so the re-leased run
                    # re-executes (and re-streams) those targets.
                    runtime.uncommitted.pop(shard_index, None)
                    runtime.spans.stamp(shard_index, lease.attempt, end=now)
                    self._requeue_or_fail(
                        runtime, shard_index,
                        f"worker {lease.worker_id!r} missed heartbeats "
                        f"(attempt {lease.attempt})")
        return expired

    def abort_unfinished(self, reason: str) -> List[SurveyJob]:
        """Fail every non-terminal job (fleet shutdown with work left)."""
        aborted = []
        with self._lock:
            for job in self.queue.unfinished():
                runtime = self._runtimes.get(job.job_id)
                if runtime is not None:
                    runtime.close()
                self.queue.transition(job.job_id, JobState.FAILED,
                                      error=reason)
                aborted.append(job)
        return aborted

    # -- internals -------------------------------------------------------

    def _next_pending_runtime(self) -> Optional[_JobRuntime]:
        for job in self.queue.unfinished():
            runtime = self._runtimes.get(job.job_id)
            if runtime is not None and runtime.pending:
                return runtime
        for job in self.queue.queued():
            return self._activate(job)
        return None

    def _activate(self, job: SurveyJob) -> _JobRuntime:
        if job.radar is not None:
            # Radar rounds carry state across the whole target list, so a
            # radar job is always exactly one shard regardless of job.shards.
            slices = [list(job.targets)]
        else:
            slices = shard_targets(job.targets, job.shards)
        events_path = None
        if self.work_dir is not None:
            events_path = os.path.join(self.work_dir, job.job_id,
                                       "events.jsonl")
        runtime = _JobRuntime(job, slices, events_path, clock=self.clock)
        self._runtimes[job.job_id] = runtime
        self.queue.transition(job.job_id, JobState.RUNNING)
        return runtime

    def _checkpoint_path(self, job: SurveyJob,
                         shard_index: int) -> Optional[str]:
        directory = job.checkpoint_dir
        if directory is None and self.work_dir is not None:
            directory = os.path.join(self.work_dir, job.job_id, "shards")
        if directory is None:
            return None
        os.makedirs(directory, exist_ok=True)
        return os.path.join(directory, f"shard-{shard_index}.json")

    def _check_lease(self, worker_id: str, job_id: str, shard_index: int,
                     attempt: int) -> ShardLease:
        runtime = self._runtimes.get(job_id)
        if runtime is not None and runtime.job.state is not JobState.RUNNING:
            # The job left RUNNING (aborted/failed) — every lease is void.
            runtime = None
        lease = (runtime.leases.get(shard_index)
                 if runtime is not None else None)
        if (lease is None or lease.worker_id != worker_id
                or lease.attempt != attempt):
            raise StaleLeaseError(
                f"worker {worker_id!r} no longer holds job {job_id} "
                f"shard {shard_index} (attempt {attempt})")
        return lease

    def _requeue_or_fail(self, runtime: _JobRuntime, shard_index: int,
                         error: str) -> None:
        job = runtime.job
        if runtime.attempts[shard_index] >= job.max_attempts:
            checkpoint = self._checkpoint_path(job, shard_index)
            targets = runtime.slices[shard_index]
            runtime.close()
            self.queue.transition(
                job.job_id, JobState.FAILED,
                error=(f"shard {shard_index} exhausted "
                       f"{job.max_attempts} attempts over "
                       f"{len(targets)} targets "
                       f"(checkpoint {checkpoint}): {error}"))
            return
        runtime.pending.append(shard_index)

    def _merge(self, runtime: _JobRuntime) -> None:
        job = runtime.job
        self.queue.transition(job.job_id, JobState.MERGING)
        outcomes = [runtime.outcomes[index]
                    for index in sorted(runtime.outcomes)]
        archive, stats, _, stop_set = merge_outcomes(
            job.spec.vantage, job.targets, outcomes)
        runtime.close()
        counts = dict(runtime.counter.counts)
        spans_root = runtime.spans.finish()
        spans_root.end = self.clock()
        self._results[job.job_id] = JobResult(
            job=job,
            archive=archive,
            stats=stats,
            metrics=runtime.registry,
            stop_set=stop_set,
            shards=outcomes,
            attempts=dict(runtime.attempts),
            event_counts=counts,
            events_path=runtime.events_path,
            spans=spans_root,
            worker_spans={outcome.shard_index: outcome.spans
                          for outcome in outcomes
                          if outcome.spans is not None},
            radar=next((outcome.radar for outcome in outcomes
                        if outcome.radar is not None), None),
        )
        self.queue.transition(job.job_id, JobState.DONE)


def _last_checkpoint_marker(payloads: Sequence[Dict]) -> Optional[int]:
    """Index of the last CheckpointWritten in a serialized event batch."""
    marker = CheckpointWritten.__name__
    for index in range(len(payloads) - 1, -1, -1):
        if payloads[index].get("event") == marker:
            return index
    return None


__all__ = [
    "Coordinator",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "JobResult",
    "ShardLease",
    "ShardTask",
    "StaleLeaseError",
]
