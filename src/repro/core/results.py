"""Result types produced by a tracenet session.

A tracenet run returns a *sequence of subnets* between the vantage point and
the destination (paper Section 2): each hop carries the IP address obtained
in trace-collection mode plus, when subnet exploration succeeded, an
:class:`ObservedSubnet` annotated with its observed prefix, the pivot /
contra-pivot / ingress roles, and whether it lies on the trace path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..netsim.addressing import Prefix, enclosing_prefix, format_ip


@dataclass
class ObservedSubnet:
    """A subnet as tracenet saw it.

    ``members`` always contains the pivot.  ``prefix`` is the smallest CIDR
    block covering the members (the *observable subnet* of Section 4's
    discussion), after H9 boundary reduction.
    """

    pivot: int
    pivot_distance: int
    members: Set[int] = field(default_factory=set)
    contra_pivot: Optional[int] = None
    ingress: Optional[int] = None
    trace_entry: Optional[int] = None
    on_trace_path: Optional[bool] = None
    positioned: bool = True
    stop_reason: str = ""
    probes_used: int = 0
    #: observed prefix length set by exploration (the last valid growth
    #: level, after H9); None falls back to the members' enclosing block.
    prefix_length: Optional[int] = None
    #: the address trace collection obtained (v); equals the pivot unless
    #: positioning promoted v's mate
    trace_address: Optional[int] = None

    def __post_init__(self):
        self.members.add(self.pivot)

    @property
    def prefix(self) -> Prefix:
        """The observed subnet block.

        Exploration records the last valid growth level (paper Algorithm 1
        + H9); results built without one report the smallest block covering
        the members.
        """
        if self.prefix_length is not None:
            return Prefix.containing(self.pivot, self.prefix_length)
        block = enclosing_prefix(self.members)
        assert block is not None  # members is never empty
        return block

    @property
    def size(self) -> int:
        """Number of collected member addresses."""
        return len(self.members)

    @property
    def is_point_to_point(self) -> bool:
        """True when the observed block is a /31 or /30 link."""
        return self.prefix.length >= 30

    @property
    def is_subnetized(self) -> bool:
        """False for lone /32 pivots tracenet failed to grow (Figure 7)."""
        return len(self.members) > 1

    def contains(self, address: int) -> bool:
        return address in self.members

    def describe(self) -> str:
        """One-line rendering used by the CLI and examples."""
        roles = []
        if self.contra_pivot is not None:
            roles.append(f"contra={format_ip(self.contra_pivot)}")
        if self.ingress is not None:
            roles.append(f"ingress={format_ip(self.ingress)}")
        placement = {True: "on-path", False: "off-path", None: "unknown-path"}
        role_text = (" " + " ".join(roles)) if roles else ""
        return (
            f"{self.prefix} [{self.size} ifaces, pivot={format_ip(self.pivot)}"
            f"{role_text}, {placement[self.on_trace_path]}]"
        )


@dataclass
class TraceHop:
    """One hop of the trace: the collected address plus its subnet."""

    ttl: int
    address: Optional[int]
    subnet: Optional[ObservedSubnet] = None
    is_destination: bool = False

    @property
    def is_anonymous(self) -> bool:
        return self.address is None

    def describe(self) -> str:
        addr = format_ip(self.address) if self.address is not None else "*"
        subnet = f"  {self.subnet.describe()}" if self.subnet is not None else ""
        marker = " <- destination" if self.is_destination else ""
        return f"{self.ttl:3d}  {addr}{subnet}{marker}"


@dataclass
class TraceResult:
    """The full outcome of one tracenet (or traceroute) session."""

    vantage_host_id: str
    destination: int
    hops: List[TraceHop] = field(default_factory=list)
    reached: bool = False
    probes_sent: int = 0
    #: 1.0 for a trace collected against a quiescent network; lowered when
    #: the topology mutated mid-trace or hop contradictions forced re-probes
    #: (the radar degradation contract — see docs/ROBUSTNESS.md).
    confidence: float = 1.0
    #: True when any part of this trace may mix pre- and post-mutation
    #: network state; such traces are kept (marked, never dropped) so the
    #: archive stays auditable.
    degraded: bool = False
    #: Why the trace degraded ("topology-mutated", "hop-contradiction", ...).
    degraded_reasons: List[str] = field(default_factory=list)

    @property
    def subnets(self) -> List[ObservedSubnet]:
        """Observed subnets in path order (deduplicated by the tracer)."""
        return [hop.subnet for hop in self.hops if hop.subnet is not None]

    @property
    def addresses(self) -> Set[int]:
        """Every address the session revealed (trace + exploration)."""
        collected: Set[int] = set()
        for hop in self.hops:
            if hop.address is not None:
                collected.add(hop.address)
            if hop.subnet is not None:
                collected.update(hop.subnet.members)
        return collected

    @property
    def path_addresses(self) -> List[Optional[int]]:
        """The traceroute-equivalent view: one address (or None) per hop."""
        return [hop.address for hop in self.hops]

    def subnet_for(self, address: int) -> Optional[ObservedSubnet]:
        """The observed subnet containing ``address``, if any."""
        for subnet in self.subnets:
            if subnet.contains(address):
                return subnet
        return None

    def describe(self) -> str:
        """Multi-line rendering (the tool's stdout format)."""
        status = "reached" if self.reached else "incomplete"
        lines = [
            f"tracenet to {format_ip(self.destination)} "
            f"from {self.vantage_host_id} ({status}, {self.probes_sent} probes)"
        ]
        lines.extend(hop.describe() for hop in self.hops)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-friendly serialization (CLI ``--json``).

        Degradation fields appear only on degraded traces, keeping
        quiescent-network output byte-identical to pre-radar runs.
        """
        payload = {
            "vantage": self.vantage_host_id,
            "destination": format_ip(self.destination),
            "reached": self.reached,
            "probes_sent": self.probes_sent,
            "hops": [
                {
                    "ttl": hop.ttl,
                    "address": format_ip(hop.address) if hop.address is not None else None,
                    "is_destination": hop.is_destination,
                    "subnet": None if hop.subnet is None else {
                        "prefix": str(hop.subnet.prefix),
                        "members": sorted(format_ip(m) for m in hop.subnet.members),
                        "pivot": format_ip(hop.subnet.pivot),
                        "contra_pivot": (format_ip(hop.subnet.contra_pivot)
                                         if hop.subnet.contra_pivot is not None else None),
                        "ingress": (format_ip(hop.subnet.ingress)
                                    if hop.subnet.ingress is not None else None),
                        "on_trace_path": hop.subnet.on_trace_path,
                        "probes_used": hop.subnet.probes_used,
                        "stop_reason": hop.subnet.stop_reason,
                    },
                }
                for hop in self.hops
            ],
        }
        if self.degraded:
            payload["degraded"] = True
            payload["confidence"] = self.confidence
            payload["degraded_reasons"] = list(self.degraded_reasons)
        return payload
