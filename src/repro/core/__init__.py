"""The paper's primary contribution: the tracenet collector.

Exports the :class:`TraceNET` tool plus the building blocks it composes —
trace collection, subnet positioning (Algorithm 2), subnet exploration
(Algorithm 1), the H1–H9 heuristics, and the probing-overhead model.
"""

from . import overhead
from .collection import (
    HopKind,
    HopObservation,
    HopPipeline,
    classify_response,
    collect_hop,
)
from .exploration import explore_subnet, unpositioned_subnet
from .heuristics import ExplorationState, Judgement, Verdict, evaluate_candidate
from .positioning import SubnetPosition, position_subnet
from .results import ObservedSubnet, TraceHop, TraceResult
from .tracenet import TraceNET

__all__ = [
    "ExplorationState",
    "HopKind",
    "HopObservation",
    "HopPipeline",
    "Judgement",
    "ObservedSubnet",
    "SubnetPosition",
    "TraceHop",
    "TraceNET",
    "TraceResult",
    "Verdict",
    "classify_response",
    "collect_hop",
    "evaluate_candidate",
    "explore_subnet",
    "overhead",
    "position_subnet",
    "unpositioned_subnet",
]
