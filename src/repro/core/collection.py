"""Trace-collection mode: obtaining one IP address per hop.

This is the traceroute-like half of tracenet (Section 3.3): an indirect
probe toward the destination at each TTL yields either a TTL-Exceeded whose
source names (one interface of) the router at that hop, a protocol-specific
alive signal meaning the destination itself answered, or silence — an
anonymous hop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..events import HopObserved, ProbeSuppressed, TraceInconsistent
from ..netsim.packet import Response
from ..probing.prober import Prober
from ..probing.stopset import StopSet

PHASE_TRACE = "trace-collection"


class HopKind(enum.Enum):
    """What the TTL-scoped probe at a hop revealed."""

    ROUTER = "router"
    DESTINATION = "destination"
    ANONYMOUS = "anonymous"


@dataclass(frozen=True)
class HopObservation:
    """The outcome of probing the destination at one TTL."""

    ttl: int
    kind: HopKind
    address: Optional[int]

    @property
    def is_anonymous(self) -> bool:
        return self.kind == HopKind.ANONYMOUS

    @property
    def reached_destination(self) -> bool:
        return self.kind == HopKind.DESTINATION


def classify_response(ttl: int, response: Optional[Response]
                      ) -> HopObservation:
    """Turn a TTL-scoped probe's answer into a hop observation."""
    if response is None:
        return HopObservation(ttl=ttl, kind=HopKind.ANONYMOUS, address=None)
    if response.is_alive_signal:
        return HopObservation(ttl=ttl, kind=HopKind.DESTINATION,
                              address=response.source)
    if response.is_ttl_exceeded:
        return HopObservation(ttl=ttl, kind=HopKind.ROUTER,
                              address=response.source)
    # Unreachables and other errors terminate the trace as anonymous hops.
    return HopObservation(ttl=ttl, kind=HopKind.ANONYMOUS, address=None)


def collect_hop(prober: Prober, destination: int, ttl: int,
                flow_id: Optional[int] = None) -> HopObservation:
    """Probe ``destination`` with ``ttl`` and classify the answer.

    ``flow_id`` overrides the prober's stable flow identity; classic
    traceroute passes a fresh value per probe, Paris-style tracing (and
    tracenet) leaves it None.
    """
    response = prober.indirect_probe(destination, ttl, phase=PHASE_TRACE,
                                     flow_id=flow_id)
    observation = classify_response(ttl, response)
    events = prober.events
    if events:
        if events.wants(HopObserved):
            events.emit(HopObserved(
                destination=destination,
                ttl=ttl,
                kind=observation.kind.value,
                address=observation.address,
            ))
        else:
            events.tally(HopObserved)
    return observation


class HopPipeline:
    """Batched + stop-set-aware hop supply for one trace's TTL ladder.

    Two orthogonal accelerations over the serial ``collect_hop`` loop:

    * **Batching**: the ladder's next ``window`` TTLs are dispatched
      through ``Prober.probe_many`` in one transport round.  Observations
      are still consumed (and :class:`HopObserved` emitted) strictly in
      TTL order, so the archive is built from the same observation
      sequence.  With ``window=1`` the probe stream is byte-identical to
      the serial loop — only the dispatch goes through the batch API.
      With ``window > 1`` the probe stream may run ahead of the consumer,
      which makes that a documented probe-economy-changing mode (a trace
      that stops early has already paid for its window).

    * **Stop sets**: before probing, the remembered path toward the
      destination's prefix is *verified* with one probe at its deepest
      known hop.  On a match the shallower hops are served from memory —
      each emits :class:`ProbeSuppressed` + :class:`HopObserved` and costs
      no wire probe, no budget, no phase attribution — and the ladder
      resumes live at the verified TTL (a prober cache hit, since the
      verification response is already cached).  On a mismatch the full
      ladder runs and the verification probe is reused from the cache, so
      divergence costs zero extra wire probes.
    """

    def __init__(self, prober: Prober, destination: int, max_hops: int,
                 window: int = 1, stop_set: Optional[StopSet] = None,
                 churn=None):
        self.prober = prober
        self.destination = destination
        self.max_hops = max_hops
        self.window = max(1, window)
        self.stop_set = stop_set
        self.churn = churn
        #: Hop contradictions detected against pre-mutation state.
        self.inconsistencies = 0
        self._epoch = churn.mutation_epoch if churn is not None else 0
        self._stale: Dict[int, HopObservation] = {}
        self._buffer: Dict[int, HopObservation] = {}
        self._served: Dict[int, HopObservation] = {}
        if stop_set is not None:
            self._consult_stop_set(stop_set)

    def _consult_stop_set(self, stop_set: StopSet) -> None:
        candidates = [(ttl, address)
                      for ttl, address in
                      stop_set.verification_hops(self.destination)
                      if ttl <= self.max_hops]
        if not candidates:
            stop_set.misses += 1
            return
        for verify_ttl, expected in candidates:
            response = self.prober.indirect_probe(
                self.destination, verify_ttl, phase=PHASE_TRACE)
            observation = classify_response(verify_ttl, response)
            if observation.kind == HopKind.ROUTER \
                    and observation.address == expected:
                break
            if observation.reached_destination:
                # The destination itself answered: it sits at or above this
                # TTL, so no remembered hop this deep can verify.  Stop
                # before a second probe risks overshooting it too.
                stop_set.rejected += 1
                return
            # Mismatched router (or silence): the path diverges here, but
            # the route tree may still be shared above — cascade up.  A
            # TTL-Exceeded mismatch costs nothing: the destination proved
            # deeper, so the ladder reuses the cached response at this TTL.
        else:
            stop_set.rejected += 1
            return
        stop_set.hits += 1
        path = stop_set.lookup(self.destination) or ()
        for ttl, address in path:
            if ttl >= verify_ttl:
                break
            kind = HopKind.ANONYMOUS if address is None else HopKind.ROUTER
            self._served[ttl] = HopObservation(ttl=ttl, kind=kind,
                                               address=address)
        # The verified hop was observed live (without a HopObserved — the
        # ladder emits it at consumption, like any buffered observation).
        self._buffer[verify_ttl] = observation

    def _check_epoch(self) -> None:
        """Quarantine prepared observations when the network mutated.

        Anything buffered (speculative window) or served-from-memory (stop
        set) before the mutation describes the *previous* network.  Those
        observations move to the stale table: when the ladder reaches their
        TTL it re-probes live — cache bypassed, after a retry-policy beat
        of backoff — and a differing answer is reported as a
        :class:`~repro.events.TraceInconsistent` contradiction.
        """
        if self.churn is None:
            return
        epoch = self.churn.mutation_epoch
        if epoch == self._epoch:
            return
        self._epoch = epoch
        self._stale.update(self._served)
        self._stale.update(self._buffer)
        self._served.clear()
        self._buffer.clear()

    def _revalidate(self, ttl: int, stale: HopObservation) -> HopObservation:
        """Re-probe a quarantined hop and report any contradiction."""
        prober = self.prober
        prober.backoff(prober.retry_policy.backoff_for(1))
        response = prober.probe(self.destination, ttl, phase=PHASE_TRACE,
                                refresh=True)
        observation = classify_response(ttl, response)
        if observation != stale:
            self.inconsistencies += 1
            events = prober.events
            if events:
                if events.wants(TraceInconsistent):
                    events.emit(TraceInconsistent(
                        destination=self.destination,
                        ttl=ttl,
                        expected=stale.address,
                        observed=observation.address,
                        reason="topology-mutated",
                    ))
                else:
                    events.tally(TraceInconsistent)
        return observation

    def hop(self, ttl: int) -> HopObservation:
        """The observation at ``ttl`` — suppressed, buffered, or probed."""
        self._check_epoch()
        stale = self._stale.pop(ttl, None)
        if stale is not None:
            observation = self._revalidate(ttl, stale)
            events = self.prober.events
            if events:
                if events.wants(HopObserved):
                    events.emit(HopObserved(
                        destination=self.destination,
                        ttl=ttl,
                        kind=observation.kind.value,
                        address=observation.address,
                    ))
                else:
                    events.tally(HopObserved)
            return observation
        served = self._served.pop(ttl, None)
        if served is not None:
            prober = self.prober
            prober.stats.record_suppressed()
            if self.stop_set is not None:
                self.stop_set.suppressed += 1
            events = prober.events
            if events:
                if events.wants(ProbeSuppressed):
                    events.emit(ProbeSuppressed(
                        destination=self.destination,
                        ttl=ttl,
                        phase=PHASE_TRACE,
                        reason="stop-set",
                        address=served.address,
                    ))
                else:
                    events.tally(ProbeSuppressed)
                if events.wants(HopObserved):
                    events.emit(HopObserved(
                        destination=self.destination,
                        ttl=ttl,
                        kind=served.kind.value,
                        address=served.address,
                    ))
                else:
                    events.tally(HopObserved)
            return served
        buffered = self._buffer.pop(ttl, None)
        if buffered is None:
            ttls = [t for t in range(ttl, min(ttl + self.window,
                                              self.max_hops + 1))
                    if t not in self._buffer and t not in self._served]
            responses = self.prober.probe_many(
                [(self.destination, t) for t in ttls], phase=PHASE_TRACE)
            for t, response in zip(ttls, responses):
                self._buffer[t] = classify_response(t, response)
            buffered = self._buffer.pop(ttl)
        events = self.prober.events
        if events:
            if events.wants(HopObserved):
                events.emit(HopObserved(
                    destination=self.destination,
                    ttl=ttl,
                    kind=buffered.kind.value,
                    address=buffered.address,
                ))
            else:
                events.tally(HopObserved)
        return buffered
