"""Trace-collection mode: obtaining one IP address per hop.

This is the traceroute-like half of tracenet (Section 3.3): an indirect
probe toward the destination at each TTL yields either a TTL-Exceeded whose
source names (one interface of) the router at that hop, a protocol-specific
alive signal meaning the destination itself answered, or silence — an
anonymous hop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..events import HopObserved
from ..probing.prober import Prober

PHASE_TRACE = "trace-collection"


class HopKind(enum.Enum):
    """What the TTL-scoped probe at a hop revealed."""

    ROUTER = "router"
    DESTINATION = "destination"
    ANONYMOUS = "anonymous"


@dataclass(frozen=True)
class HopObservation:
    """The outcome of probing the destination at one TTL."""

    ttl: int
    kind: HopKind
    address: Optional[int]

    @property
    def is_anonymous(self) -> bool:
        return self.kind == HopKind.ANONYMOUS

    @property
    def reached_destination(self) -> bool:
        return self.kind == HopKind.DESTINATION


def collect_hop(prober: Prober, destination: int, ttl: int,
                flow_id: Optional[int] = None) -> HopObservation:
    """Probe ``destination`` with ``ttl`` and classify the answer.

    ``flow_id`` overrides the prober's stable flow identity; classic
    traceroute passes a fresh value per probe, Paris-style tracing (and
    tracenet) leaves it None.
    """
    response = prober.indirect_probe(destination, ttl, phase=PHASE_TRACE,
                                     flow_id=flow_id)
    if response is None:
        observation = HopObservation(ttl=ttl, kind=HopKind.ANONYMOUS,
                                     address=None)
    elif response.is_alive_signal:
        observation = HopObservation(ttl=ttl, kind=HopKind.DESTINATION,
                                     address=response.source)
    elif response.is_ttl_exceeded:
        observation = HopObservation(ttl=ttl, kind=HopKind.ROUTER,
                                     address=response.source)
    else:
        # Unreachables and other errors terminate the trace as anonymous hops.
        observation = HopObservation(ttl=ttl, kind=HopKind.ANONYMOUS,
                                     address=None)
    if prober.events:
        prober.events.emit(HopObserved(
            destination=destination,
            ttl=ttl,
            kind=observation.kind.value,
            address=observation.address,
        ))
    return observation
