"""The tracenet tool: trace collection + subnet positioning + exploration.

Public entry point of the library.  A :class:`TraceNET` instance is bound to
one vantage point on one engine; each :meth:`TraceNET.trace` call walks the
path to a destination hop by hop and, at every hop, grows the subnet
accommodating the address obtained there — returning the sequence of
observed subnets of Figure 1(b).

Subnets already collected by earlier traces from the same instance are
recognized by membership and not re-explored, which is what makes
survey-scale target sets (Section 4.2's 34 084 addresses) affordable — the
same economy the authors' implementation gets from merged heuristics and
response caching.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..events import DegradedResult, EventBus, TraceFinished, TraceStarted
from ..netsim.packet import Protocol
from ..probing.budget import ProbeBudget
from ..probing.prober import Prober
from ..probing.stopset import StopSet
from ..transport import as_transport
from ..transport.churn import find_mutating
from .collection import HopPipeline, collect_hop
from .exploration import (
    DEFAULT_MIN_PREFIX_LENGTH,
    explore_subnet,
    unpositioned_subnet,
)
from .positioning import position_subnet
from .results import ObservedSubnet, TraceHop, TraceResult

#: Consecutive anonymous hops after which a trace gives up.
DEFAULT_ANONYMOUS_GAP_LIMIT = 3


class TraceNET:
    """End-to-end subnet-level topology collector.

    Args:
        network: any :class:`~repro.transport.ProbeTransport` (simulator,
            journal replay, fault wrapper, ...) — or a bare
            :class:`~repro.netsim.engine.Engine`, wrapped transparently.
        vantage_host_id: registered host the probes originate from.
        protocol: ICMP (default, least affected by load balancing — Section
            3.7), UDP or TCP.
        max_hops: trace length cap.
        min_prefix_length: exploration growth floor (/20 by default).
        explore: when False, tracenet degrades to plain trace collection —
            the paper's worst case, "the exact path traceroute would return".
        budget: optional probe budget shared by all traces of this instance.
        events: session-event bus shared with the prober; defaults to a
            fresh bus reachable as ``tool.events``.
        batch_window: 0 (the default) keeps the serial per-probe loop.
            1 dispatches every ladder probe through the transport batch API
            one at a time — the probe stream (and thus the archive) stays
            byte-identical to the serial path.  > 1 additionally batches
            that many upcoming TTLs (and exploration candidate sweeps) per
            transport round — a speculative, probe-economy-changing mode:
            a trace that stops early has already paid for its window.
        stop_set: a shared :class:`~repro.probing.StopSet` enabling
            Doubletree-style suppression of already-traced path prefixes;
            also probe-economy-changing (probes only ever go down), map-equal
            on the reference networks.
    """

    def __init__(self, network, vantage_host_id: str,
                 protocol: Protocol = Protocol.ICMP,
                 max_hops: int = 30,
                 min_prefix_length: int = DEFAULT_MIN_PREFIX_LENGTH,
                 explore: bool = True,
                 reuse_subnets: bool = True,
                 anonymous_gap_limit: int = DEFAULT_ANONYMOUS_GAP_LIMIT,
                 budget: Optional[ProbeBudget] = None,
                 disabled_rules: frozenset = frozenset(),
                 events: Optional[EventBus] = None,
                 batch_window: int = 0,
                 stop_set: Optional[StopSet] = None):
        self.transport = as_transport(network)
        self.events = events if events is not None else EventBus()
        self.vantage_host_id = vantage_host_id
        self.prober = Prober(self.transport, vantage_host_id,
                             protocol=protocol, budget=budget,
                             events=self.events)
        self.max_hops = max_hops
        self.min_prefix_length = min_prefix_length
        self.explore = explore
        self.reuse_subnets = reuse_subnets
        self.anonymous_gap_limit = anonymous_gap_limit
        self.disabled_rules = disabled_rules
        self.batch_window = max(0, batch_window)
        self.stop_set = stop_set
        self._subnets: List[ObservedSubnet] = []
        self._member_index: Dict[int, ObservedSubnet] = {}
        # Churn awareness: when the transport chain contains a
        # MutatingTransport, its fired-mutation counter is the staleness
        # signal — identical live and replayed, so every decision derived
        # from it replays byte for byte.
        self._churn = find_mutating(self.transport)
        self._synced_epoch = (self._churn.mutation_epoch
                              if self._churn is not None else 0)

    @property
    def engine(self):
        """The underlying simulator engine, when the transport has one."""
        return getattr(self.transport, "engine", None)

    # -- public API ------------------------------------------------------

    def _sync_epoch(self) -> int:
        """Absorb any mutations fired since the last trace.

        The prober's response cache and the shared stop set both describe
        the pre-mutation network; invalidating them here (once per observed
        epoch change, O(1) for the stop set) is what keeps mid-survey churn
        from silently corrupting later traces.  Returns the current epoch.
        """
        if self._churn is None:
            return 0
        epoch = self._churn.mutation_epoch
        if epoch != self._synced_epoch:
            self._synced_epoch = epoch
            self.prober.clear_cache()
            if self.stop_set is not None:
                self.stop_set.advance_epoch()
        return epoch

    def trace(self, destination: int) -> TraceResult:
        """Trace toward ``destination``, exploring each visited subnet."""
        if self.events:
            self.events.emit(TraceStarted(destination=destination))
        epoch_at_start = self._sync_epoch()
        before = self.prober.stats_snapshot()
        result = TraceResult(vantage_host_id=self.vantage_host_id,
                             destination=destination)
        previous_address: Optional[int] = None
        anonymous_streak = 0
        seen_addresses = set()
        pipeline: Optional[HopPipeline] = None
        if self.batch_window >= 1 or self.stop_set is not None:
            pipeline = HopPipeline(self.prober, destination, self.max_hops,
                                   window=max(1, self.batch_window),
                                   stop_set=self.stop_set,
                                   churn=self._churn)

        for ttl in range(1, self.max_hops + 1):
            if pipeline is not None:
                observation = pipeline.hop(ttl)
            else:
                observation = collect_hop(self.prober, destination, ttl)

            if observation.is_anonymous:
                anonymous_streak += 1
                result.hops.append(TraceHop(ttl=ttl, address=None))
                previous_address = None
                if anonymous_streak >= self.anonymous_gap_limit:
                    break
                continue
            anonymous_streak = 0

            address = observation.address
            assert address is not None
            hop = TraceHop(ttl=ttl, address=address,
                           is_destination=observation.reached_destination)
            if address in seen_addresses and not observation.reached_destination:
                # Routing loop: record the repeat and stop.
                result.hops.append(hop)
                break
            seen_addresses.add(address)

            if self.explore:
                hop.subnet = self._subnet_for_hop(previous_address, address, ttl)
            result.hops.append(hop)

            if observation.reached_destination:
                result.reached = True
                break
            previous_address = address

        epoch_at_end = (self._churn.mutation_epoch
                        if self._churn is not None else 0)
        mutations_seen = epoch_at_end - epoch_at_start
        contradictions = pipeline.inconsistencies if pipeline else 0
        if mutations_seen or contradictions:
            # The trace may mix pre- and post-mutation state: keep it, mark
            # it, and never teach the stop set a possibly-chimeric path.
            result.degraded = True
            if mutations_seen:
                result.degraded_reasons.append("topology-mutated")
            if contradictions:
                result.degraded_reasons.append("hop-contradiction")
            result.confidence = round(max(
                0.1, 1.0 - 0.2 * mutations_seen - 0.1 * contradictions), 3)
            if self.events:
                self.events.emit(DegradedResult(
                    destination=destination,
                    reason=";".join(result.degraded_reasons),
                    confidence=result.confidence,
                ))
        if self.stop_set is not None and result.reached \
                and not result.degraded:
            self.stop_set.record(destination, [
                (hop.ttl, hop.address)
                for hop in result.hops if not hop.is_destination
            ])
        result.probes_sent = self.prober.stats.sent - before.sent
        if self.events:
            self.events.emit(TraceFinished(
                destination=destination,
                reached=result.reached,
                hops=len(result.hops),
                probes_sent=result.probes_sent,
                cache_hits=self.prober.stats.cache_hits - before.cache_hits,
            ))
        return result

    def trace_many(self, destinations: Iterable[int]) -> List[TraceResult]:
        """Trace toward every destination, sharing collected subnets."""
        return [self.trace(destination) for destination in destinations]

    @property
    def collected_subnets(self) -> List[ObservedSubnet]:
        """Every distinct subnet observed by this instance so far."""
        return list(self._subnets)

    @property
    def collected_addresses(self) -> set:
        """Every address placed into some observed subnet."""
        return set(self._member_index.keys())

    def evict_subnets(self, predicate) -> List[ObservedSubnet]:
        """Drop registered subnets matching ``predicate`` from reuse.

        Radar rounds call this for prefixes a mutation touched: the next
        trace through them re-positions and re-explores instead of serving
        the pre-mutation subnet from the registry.  Returns the evicted
        subnets (callers may diff against what re-probing finds).
        """
        evicted = [s for s in self._subnets if predicate(s)]
        if evicted:
            keep = [s for s in self._subnets if not predicate(s)]
            self._subnets = keep
            self._member_index = {}
            for subnet in keep:
                for member in subnet.members:
                    self._member_index.setdefault(member, subnet)
        return evicted

    def register_subnet(self, subnet: ObservedSubnet) -> None:
        """Adopt an externally collected subnet into the reuse registry.

        Survey runners use this to seed a resumed instance from a
        checkpoint archive so subnet reuse keeps working across restarts.
        """
        self._subnets.append(subnet)
        for member in subnet.members:
            self._member_index.setdefault(member, subnet)

    # -- internals ---------------------------------------------------------

    def _subnet_for_hop(self, previous_address: Optional[int], address: int,
                        ttl: int) -> ObservedSubnet:
        if self.reuse_subnets:
            known = self._member_index.get(address)
            if known is not None:
                return known
        position = position_subnet(self.prober, previous_address, address, ttl)
        if position is None:
            subnet = unpositioned_subnet(self.prober, address, ttl)
        else:
            if self.reuse_subnets and position.pivot != address:
                known = self._member_index.get(position.pivot)
                if known is not None:
                    return known
            subnet = explore_subnet(self.prober, position,
                                    min_prefix_length=self.min_prefix_length,
                                    disabled_rules=self.disabled_rules,
                                    batch_window=self.batch_window)
        self.register_subnet(subnet)
        return subnet
