"""Analytic probing-overhead model (paper Section 3.6).

The paper bounds tracenet's per-subnet probe cost:

* **lower bound** — an on-path point-to-point subnet costs 4 probes (one
  trace-collection probe, one positioning probe, and only H2+H5 per member,
  with the stop condition hit immediately);
* **upper bound** — an off-path multi-access LAN with no mate-31 pairs costs
  ``7·|S| + 7`` probes (initial cost 3, final cost 8, 3 per contra-pivot and
  7 per other non-pivot member).

The benches compare these bounds against measured
:class:`~repro.probing.budget.ProbeStats` to validate the implementation's
probe economy.
"""

from __future__ import annotations

from dataclasses import dataclass

LOWER_BOUND_P2P = 4


def upper_bound(subnet_size: int) -> int:
    """Worst-case probes to explore a subnet of ``subnet_size`` interfaces."""
    if subnet_size < 1:
        raise ValueError("a subnet hosts at least one observable interface")
    return 7 * subnet_size + 7


def lower_bound(subnet_size: int) -> int:
    """Best-case probes: the on-path point-to-point constant of the paper,
    generalized with one H2 probe per extra member for larger subnets."""
    if subnet_size < 1:
        raise ValueError("a subnet hosts at least one observable interface")
    if subnet_size <= 2:
        return LOWER_BOUND_P2P
    # Initial cost 2 (trace + positioning) plus at least one aliveness
    # probe per non-pivot member and one stop probe.
    return 2 + (subnet_size - 1) + 1


@dataclass(frozen=True)
class OverheadEstimate:
    """Both bounds for one subnet size, plus a midpoint expectation."""

    subnet_size: int
    lower: int
    upper: int

    @property
    def expected(self) -> float:
        """A coarse midpoint expectation used only for report context."""
        return (self.lower + self.upper) / 2

    def contains(self, measured: int, slack: float = 1.25) -> bool:
        """True when a measured probe count is consistent with the model.

        ``slack`` absorbs costs the analytic model excludes by assumption:
        retries on silence and the boundary addresses probed at each level.
        """
        return measured <= self.upper * slack


def estimate(subnet_size: int) -> OverheadEstimate:
    """Bounds for a subnet accommodating ``subnet_size`` interfaces."""
    return OverheadEstimate(
        subnet_size=subnet_size,
        lower=lower_bound(subnet_size),
        upper=upper_bound(subnet_size),
    )


def worst_case_probability(subnet_size: int) -> float:
    """Probability bound of the worst-case layout (Section 3.6).

    The upper bound requires an administrator to assign only odd or only
    even addresses; the paper bounds the chance of meeting such a subnet by
    ``1 / C(2^ceil(lg(2|S|-1)), |S|)``.
    """
    import math

    if subnet_size < 2:
        return 0.0
    pool = 2 ** math.ceil(math.log2(2 * subnet_size - 1))
    return 1.0 / math.comb(pool, subnet_size)
