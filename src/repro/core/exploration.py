"""Subnet exploration — Algorithm 1 of the paper.

Starting from the positioned pivot, exploration forms temporary subnets of
decreasing prefix length (/31, /30, …), direct-probes every candidate
address inside each level, and admits candidates through the H2–H8 pipeline.
Any stop-and-shrink verdict executes H1 (shrink to the last intact prefix,
discarding the false positives); a level whose accumulated membership fills
at most half of its block ends the growth (lines 19–21); and H9 strips
boundary addresses from the final subnet.
"""

from __future__ import annotations

from typing import Optional, Set

from ..events import SubnetGrown, SubnetShrunk
from ..netsim.addressing import Prefix
from ..probing.prober import Prober
from .heuristics import (
    PHASE_EXPLORATION,
    ExplorationState,
    Verdict,
    evaluate_candidate,
)
from .positioning import SubnetPosition
from .results import ObservedSubnet

#: Never grow beyond this prefix length (the paper's data bottoms out at /20).
DEFAULT_MIN_PREFIX_LENGTH = 20


def explore_subnet(prober: Prober, position: SubnetPosition,
                   min_prefix_length: int = DEFAULT_MIN_PREFIX_LENGTH,
                   disabled_rules: frozenset = frozenset(),
                   audit: "Optional[list]" = None,
                   batch_window: int = 1) -> ObservedSubnet:
    """Run Algorithm 1 around a positioned pivot; return the observed subnet.

    ``disabled_rules`` (e.g. ``frozenset({"H7", "H8"})``) turns heuristics
    off for ablation studies; ``audit``, when a list, receives every
    (candidate, judgement) pair the pipeline produced.  ``batch_window > 1``
    prefetches each level's H2 sweep probes in transport batches of that
    size (speculative: an early stop-and-shrink has already paid for the
    current chunk, so probe counts can exceed the serial path's).
    """
    state = ExplorationState(
        prober=prober,
        pivot=position.pivot,
        pivot_distance=position.pivot_distance,
        ingress=position.ingress,
        trace_entry=position.trace_entry,
        on_trace_path=position.on_trace_path,
        disabled_rules=disabled_rules,
        audit=audit,
    )
    before = prober.stats_snapshot()
    members: Set[int] = {position.pivot}
    tested: Set[int] = {position.pivot}
    stop_reason = "prefix-floor"
    observed_length = min_prefix_length

    try:
        for level in range(31, min_prefix_length - 1, -1):
            block = Prefix.containing(position.pivot, level)
            shrunk = _explore_level(state, block, members, tested,
                                    batch_window=batch_window)
            if shrunk is not None:
                observed_length = min(level + 1, 32)
                _shrink(members, state, position.pivot, observed_length)
                stop_reason = f"shrunk:{shrunk}"
                if prober.events:
                    prober.events.emit(SubnetShrunk(
                        pivot=position.pivot, rule=shrunk,
                        prefix_length=observed_length))
                break
            if level <= 29 and len(members) <= block.host_capacity // 2:
                # Lines 19-21: the level stayed at most half utilized (over
                # the addresses a subnet of this prefix could accommodate),
                # so the subnet keeps the previous (last sufficiently
                # filled) prefix.
                observed_length = level + 1
                _shrink(members, state, position.pivot, observed_length)
                stop_reason = "under-utilized"
                if prober.events:
                    prober.events.emit(SubnetShrunk(
                        pivot=position.pivot, rule="half-utilization",
                        prefix_length=observed_length))
                break
    finally:
        state.detach()

    observed_length = _reduce_boundaries(members, position.pivot,
                                         observed_length)
    if len(members) == 1:
        observed_length = 32  # an un-subnetized address, not a subnet
    if state.contra_pivot is not None and state.contra_pivot not in members:
        state.contra_pivot = None

    after = prober.stats_snapshot()
    if prober.events:
        prober.events.emit(SubnetGrown(
            pivot=position.pivot,
            prefix=str(Prefix.containing(position.pivot, observed_length)),
            size=len(members),
            stop_reason=stop_reason,
            probes_used=after.sent - before.sent,
            phase_probes=after.phase_delta(before),
            candidates_tested=len(tested),
        ))
    return ObservedSubnet(
        pivot=position.pivot,
        pivot_distance=position.pivot_distance,
        members=members,
        contra_pivot=state.contra_pivot,
        ingress=position.ingress,
        trace_entry=position.trace_entry,
        on_trace_path=position.on_trace_path,
        positioned=True,
        stop_reason=stop_reason,
        probes_used=after.sent - before.sent,
        prefix_length=observed_length,
        trace_address=position.trace_address,
    )


def unpositioned_subnet(prober: Prober, address: int, hop: int) -> ObservedSubnet:
    """The /32 fallback when Algorithm 2 cannot place an address.

    These are the "IP addresses for which tracenet failed to grow a subnet"
    counted as un-subnetized in Figure 7.
    """
    return ObservedSubnet(
        pivot=address,
        pivot_distance=hop,
        members={address},
        positioned=False,
        stop_reason="unpositioned",
        trace_address=address,
    )


def _explore_level(state: ExplorationState, block: Prefix,
                   members: Set[int], tested: Set[int],
                   batch_window: int = 1) -> Optional[str]:
    """Probe every untested candidate in ``block``.

    Returns the rule name that demanded stop-and-shrink, or None when the
    level completed cleanly.  With ``batch_window > 1`` the level's H2
    probes (one per candidate, at the pivot distance) are prefetched in
    chunks of that size; the per-candidate pipeline then answers H2 from
    the response cache, so heuristic order and verdicts are unchanged.
    """
    candidates = [c for c in block.addresses() if c not in tested]
    if batch_window > 1:
        for start in range(0, len(candidates), batch_window):
            chunk = candidates[start:start + batch_window]
            state.prober.probe_many(
                [(candidate, state.pivot_distance) for candidate in chunk],
                phase=PHASE_EXPLORATION)
            stop = _judge_candidates(state, chunk, members, tested)
            if stop is not None:
                return stop
        return None
    return _judge_candidates(state, candidates, members, tested)


def _judge_candidates(state: ExplorationState, candidates,
                      members: Set[int], tested: Set[int]) -> Optional[str]:
    for candidate in candidates:
        tested.add(candidate)
        judgement = evaluate_candidate(state, candidate)
        if judgement.verdict == Verdict.ADD:
            members.add(candidate)
        elif judgement.verdict == Verdict.ADD_CONTRA:
            members.add(candidate)
            state.contra_pivot = candidate
        elif judgement.verdict == Verdict.STOP:
            return judgement.rule
    return None


def _shrink(members: Set[int], state: ExplorationState, pivot: int,
            keep_length: int) -> None:
    """H1 prefix reduction: drop every member outside the last valid level."""
    keep_block = Prefix.containing(pivot, min(keep_length, 32))
    for address in list(members):
        if address not in keep_block:
            members.discard(address)
    if state.contra_pivot is not None and state.contra_pivot not in members:
        state.contra_pivot = None


def _reduce_boundaries(members: Set[int], pivot: int, length: int) -> int:
    """H9 boundary address reduction.

    While the observed block (at /30 or shorter) claims its own network or
    broadcast address as a member, split it and keep only the half
    accommodating the pivot.  Returns the final prefix length.

    Besides catching merges across allocation boundaries, this is what
    recovers /31 links: a /31 whose sibling space is silent stops growing
    at /30, where one of its two addresses necessarily sits on a /30
    boundary — one split restores the true /31.
    """
    while length < 31:
        block = Prefix.containing(pivot, length)
        if block.network not in members and block.broadcast not in members:
            return length
        length += 1
        keep = Prefix.containing(pivot, length)
        for address in list(members):
            if address not in keep:
                members.discard(address)
    return length
