"""Subnet positioning — Algorithm 2 of the paper.

Given the last two addresses ``u`` (hop d-1) and ``v`` (hop d) obtained in
trace-collection mode, positioning (a) measures the true direct distance to
``v``, (b) decides whether the subnet to be explored lies on or off the
trace path, (c) designates the *pivot* interface — ``v`` itself, or its
mate-31/mate-30 when the router reported an interface facing the vantage —
and (d) obtains the *ingress* interface by expiring a probe one hop short of
the pivot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..events import SubnetPositioned
from ..netsim.addressing import mate30, mate31
from ..probing.prober import Prober

PHASE_POSITIONING = "subnet-positioning"


@dataclass(frozen=True)
class SubnetPosition:
    """Everything exploration needs to start growing a subnet."""

    pivot: int
    pivot_distance: int
    ingress: Optional[int]
    trace_entry: Optional[int]
    on_trace_path: Optional[bool]
    #: the address obtained in trace-collection mode (v); differs from the
    #: pivot when Algorithm 2 promoted v's mate
    trace_address: Optional[int] = None

    @property
    def pivot_is_trace_address(self) -> bool:
        return self.trace_address is not None and self.pivot == self.trace_address

    @property
    def entry_addresses(self) -> set:
        """The valid ingress addresses H6 accepts (i and u, when known)."""
        entries = set()
        if self.ingress is not None:
            entries.add(self.ingress)
        if self.trace_entry is not None:
            entries.add(self.trace_entry)
        return entries


def position_subnet(prober: Prober, u: Optional[int], v: int, d: int
                    ) -> Optional[SubnetPosition]:
    """Run Algorithm 2.  Returns None when ``v`` cannot be positioned.

    ``u`` may be None when hop d-1 was anonymous; the on/off-path decision
    then degrades to "unknown" exactly as the paper tolerates (H6 remains
    valid with anonymous entry points).
    """
    vh = prober.measure_distance(v, hint=d, phase=PHASE_POSITIONING)
    if vh is None:
        if prober.events:
            prober.events.emit(SubnetPositioned(
                trace_address=v, positioned=False, pivot=None,
                pivot_distance=None, on_trace_path=None))
        return None

    on_trace_path = _decide_on_trace_path(prober, u, v, vh, d)
    pivot, pivot_distance = _designate_pivot(prober, v, vh)
    ingress = _designate_ingress(prober, pivot, pivot_distance)
    if prober.events:
        prober.events.emit(SubnetPositioned(
            trace_address=v, positioned=True, pivot=pivot,
            pivot_distance=pivot_distance, on_trace_path=on_trace_path))
    return SubnetPosition(
        pivot=pivot,
        pivot_distance=pivot_distance,
        ingress=ingress,
        trace_entry=u,
        on_trace_path=on_trace_path,
        trace_address=v,
    )


def _decide_on_trace_path(prober: Prober, u: Optional[int], v: int,
                          vh: int, d: int) -> Optional[bool]:
    """Algorithm 2 lines 2-10."""
    if vh != d:
        return False
    if vh == 1:
        # The first hop: the probe necessarily passed through the subnet's
        # only upstream side (the vantage gateway).
        return True
    response = prober.probe(v, vh - 1, phase=PHASE_POSITIONING)
    if response is None or not response.is_ttl_exceeded:
        return None
    if u is None:
        return None
    return response.source == u


def _designate_pivot(prober: Prober, v: int, vh: int):
    """Algorithm 2 lines 11-21: mate-31 adjacency decides the pivot."""
    probe_mate = prober.probe(mate31(v), vh, phase=PHASE_POSITIONING)
    if probe_mate is not None and probe_mate.is_ttl_exceeded:
        if prober.is_alive(mate31(v), phase=PHASE_POSITIONING):
            return mate31(v), vh + 1
        if prober.is_alive(mate30(v), phase=PHASE_POSITIONING):
            return mate30(v), vh + 1
        return v, vh
    if probe_mate is None and mate30(v) != mate31(v):
        # The /31 mate was silent; the paper retries the argument with the
        # /30 mate before concluding v itself is the pivot.
        probe_mate30 = prober.probe(mate30(v), vh, phase=PHASE_POSITIONING)
        if (probe_mate30 is not None and probe_mate30.is_ttl_exceeded
                and prober.is_alive(mate30(v), phase=PHASE_POSITIONING)):
            return mate30(v), vh + 1
    return v, vh


def _designate_ingress(prober: Prober, pivot: int, pivot_distance: int
                       ) -> Optional[int]:
    """Algorithm 2 line 22: expire a probe one hop short of the pivot."""
    if pivot_distance <= 1:
        return None
    response = prober.probe(pivot, pivot_distance - 1, phase=PHASE_POSITIONING)
    if response is not None and response.is_ttl_exceeded:
        return response.source
    return None
