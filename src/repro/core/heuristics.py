"""The subnet-authenticity heuristics H1–H9 (paper Section 3.5).

Exploration grows a candidate subnet around the pivot; each candidate
address must run this gauntlet before being admitted.  The heuristics
recognize the three fringe-interface families of Figure 5 — ingress fringe
(H3), far fringe (H7) and close fringe (H8) — plus distance and entry-point
consistency (H2, H4, H6) and the mate-31 shortcut (H5).  H1 (prefix
reduction / stop-and-shrink) and H9 (boundary-address reduction) act on the
subnet as a whole and live in :mod:`repro.core.exploration`.

As in the paper's implementation, the rules are merged to spend the fewest
probes: H3 and H6 share the single probe of the candidate at distance
``jh - 1``, and the prober's response cache makes repeated looks at the
pivot's neighbours free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Set

from ..events import HeuristicFired
from ..netsim.addressing import mate30, mate31
from ..netsim.packet import Response, ResponseType
from ..probing.prober import Prober

PHASE_EXPLORATION = "subnet-exploration"


class Verdict(enum.Enum):
    """Outcome of testing one candidate address."""

    ADD = "add"                      # passes: a member at pivot distance
    ADD_CONTRA = "add-contra-pivot"  # passes: the (single) contra-pivot
    SKIP = "continue-with-next-address"
    STOP = "stop-and-shrink"


@dataclass(frozen=True)
class Judgement:
    """A verdict plus which rule produced it (for logs and tests)."""

    verdict: Verdict
    rule: str
    detail: str = ""


@dataclass
class ExplorationState:
    """Mutable context shared by the heuristics while one subnet grows.

    ``disabled_rules`` supports ablation studies: a rule named there always
    passes (as if its test never fired).  ``audit`` collects per-candidate
    judgements when a list is supplied; it is a thin adapter over the
    session-event bus — every judgement is emitted as a
    :class:`~repro.events.HeuristicFired` event, and the audit sink
    translates those back into ``(candidate, Judgement)`` pairs.
    """

    prober: Prober
    pivot: int
    pivot_distance: int
    ingress: Optional[int] = None
    trace_entry: Optional[int] = None
    on_trace_path: Optional[bool] = None
    contra_pivot: Optional[int] = None
    disabled_rules: frozenset = frozenset()
    audit: Optional[list] = None

    def __post_init__(self) -> None:
        self._audit_sink = None
        if self.audit is not None and self.prober is not None:
            self._audit_sink = self.prober.events.subscribe(self._on_event)

    def rule_enabled(self, rule: str) -> bool:
        return rule not in self.disabled_rules

    def record(self, candidate: int, judgement: "Judgement") -> "Judgement":
        if self.prober is not None:
            bus = self.prober.events
            if bus:
                bus.emit(HeuristicFired(
                    candidate=candidate,
                    rule=judgement.rule,
                    verdict=judgement.verdict.value,
                    detail=judgement.detail,
                ))
        elif self.audit is not None:
            # No bus to adapt over (a prober-less unit-test state): keep
            # the audit contract directly.
            self.audit.append((candidate, judgement))
        return judgement

    def detach(self) -> None:
        """Unsubscribe the audit adapter (call when the state is done)."""
        if self._audit_sink is not None:
            self.prober.events.unsubscribe(self._audit_sink)
            self._audit_sink = None

    def _on_event(self, event) -> None:
        if isinstance(event, HeuristicFired) and self.audit is not None:
            self.audit.append((event.candidate, Judgement(
                Verdict(event.verdict), event.rule, event.detail)))

    @property
    def entry_addresses(self) -> Set[int]:
        """Ingress addresses H6 accepts; u counts unless the subnet is
        known to be off the trace path (Section 3.7)."""
        entries: Set[int] = set()
        if self.ingress is not None:
            entries.add(self.ingress)
        if self.trace_entry is not None and self.on_trace_path is not False:
            entries.add(self.trace_entry)
        return entries


def _is_unhelpful(response: Optional[Response]) -> bool:
    """Silence or an unreachable — the cases where H7/H8 fall back to the
    /30 mate (paper: "does not yield any response or yields an ICMP
    Host-Unreachable")."""
    return response is None or response.kind in (
        ResponseType.HOST_UNREACHABLE,
        ResponseType.NETWORK_UNREACHABLE,
    )


def evaluate_candidate(state: ExplorationState, candidate: int) -> Judgement:
    """Run the merged H2–H8 pipeline on one candidate address.

    The caller applies the consequences: ADD/ADD_CONTRA extend the subnet
    (and set ``state.contra_pivot``), SKIP moves on, STOP triggers H1's
    stop-and-shrink.
    """
    judgement = heuristic_h2(state, candidate)
    if judgement is not None:
        return state.record(candidate, judgement)

    if state.rule_enabled("H5"):
        judgement = heuristic_h5(state, candidate)
        if judgement is not None:
            return state.record(candidate, judgement)

    # One probe at jh-1 feeds both H3 (contra-pivot detection) and H6
    # (fixed entry points) — "both H3 and H6 requires the same single
    # probe" (Section 3.6).
    closer: Optional[Response] = None
    if state.pivot_distance > 1:
        closer = state.prober.probe(candidate, state.pivot_distance - 1,
                                    phase=PHASE_EXPLORATION)
        if closer is not None and closer.is_alive_signal:
            if state.rule_enabled("H3"):
                return state.record(candidate, heuristic_h3_h4(state, candidate))
        elif state.rule_enabled("H6"):
            judgement = heuristic_h6(state, closer)
            if judgement is not None:
                return state.record(candidate, judgement)

    if state.rule_enabled("H7"):
        judgement = heuristic_h7(state, candidate)
        if judgement is not None:
            return state.record(candidate, judgement)

    if state.pivot_distance > 1 and state.rule_enabled("H8"):
        judgement = heuristic_h8(state, candidate)
        if judgement is not None:
            return state.record(candidate, judgement)

    return state.record(
        candidate, Judgement(Verdict.ADD, "pipeline", "passed all heuristics"))


# -- individual rules ---------------------------------------------------------


def heuristic_h2(state: ExplorationState, candidate: int) -> Optional[Judgement]:
    """H2 upper-bound subnet contiguity: the candidate must be alive at the
    pivot's distance; a TTL-Exceeded means it lies farther — overgrowth."""
    response = state.prober.probe(candidate, state.pivot_distance,
                                  phase=PHASE_EXPLORATION)
    if response is not None and response.is_alive_signal:
        return None
    if response is not None and response.is_ttl_exceeded:
        return Judgement(Verdict.STOP, "H2", "candidate farther than subnet")
    return Judgement(Verdict.SKIP, "H2", "candidate silent or unreachable")


def heuristic_h5(state: ExplorationState, candidate: int) -> Optional[Judgement]:
    """H5 mate-31 subnet contiguity: the pivot's /31 mate (or /30 mate when
    the /31 mate is unused) is on the subnet by assignment practice.

    When the admitted mate answers one hop closer it *is* the contra-pivot
    (the point-to-point case): recording it keeps H3's single-contra-pivot
    invariant armed against ingress-hosted impostors on sibling links.
    """
    is_mate = candidate == mate31(state.pivot)
    if not is_mate and candidate == mate30(state.pivot):
        is_mate = not state.prober.is_alive(mate31(state.pivot),
                                            phase=PHASE_EXPLORATION)
    if not is_mate:
        return None
    if state.contra_pivot is None and state.pivot_distance > 1:
        closer = state.prober.probe(candidate, state.pivot_distance - 1,
                                    phase=PHASE_EXPLORATION)
        if closer is not None and closer.is_alive_signal:
            return Judgement(Verdict.ADD_CONTRA, "H5",
                             "mate of pivot, one hop closer (contra-pivot)")
    return Judgement(Verdict.ADD, "H5", "mate of pivot")


def heuristic_h3_h4(state: ExplorationState, candidate: int) -> Judgement:
    """H3 single contra-pivot + H4 lower-bound subnet contiguity.

    The candidate answered at ``jh - 1``: it is either *the* contra-pivot
    (one per subnet) or an ingress-fringe interface.  H4 then demands it be
    dead at ``jh - 2`` before trusting it.
    """
    if state.contra_pivot is not None and state.contra_pivot != candidate:
        return Judgement(Verdict.STOP, "H3", "second contra-pivot detected")
    if state.pivot_distance > 2 and state.rule_enabled("H4"):
        two_closer = state.prober.probe(candidate, state.pivot_distance - 2,
                                        phase=PHASE_EXPLORATION)
        if two_closer is not None and two_closer.is_alive_signal:
            return Judgement(Verdict.STOP, "H4",
                             "contra-pivot candidate alive two hops closer")
    return Judgement(Verdict.ADD_CONTRA, "H3", "contra-pivot accepted")


def heuristic_h6(state: ExplorationState, closer: Optional[Response]
                 ) -> Optional[Judgement]:
    """H6 fixed entry points: probes expiring one hop short of the subnet
    must expire at a known ingress (i from positioning, u from trace
    collection).  Anonymous entries keep the rule vacuously valid."""
    if closer is None or not closer.is_ttl_exceeded:
        return None
    entries = state.entry_addresses
    if not entries:
        return None
    if closer.source in entries:
        return None
    return Judgement(Verdict.STOP, "H6",
                     "candidate entered through a foreign router")


def heuristic_h7(state: ExplorationState, candidate: int) -> Optional[Judgement]:
    """H7 upper-bound router contiguity: a far-fringe interface's mate lives
    one hop beyond, so probing the mate at the pivot distance TTL-expires."""
    verdict = _mate_probe_stops(state, candidate, ttl=state.pivot_distance,
                                fatal=ResponseType.TTL_EXCEEDED)
    if verdict:
        return Judgement(Verdict.STOP, "H7", "far-fringe interface detected")
    return None


def heuristic_h8(state: ExplorationState, candidate: int) -> Optional[Judgement]:
    """H8 lower-bound router contiguity: a close-fringe interface's mate
    sits on the ingress router, hence answers at ``jh - 1``.  The
    contra-pivot's own mate relationship is explicitly exempt.

    A TTL-Exceeded here is an en-route expiry — it says nothing about the
    mate address itself — so, like silence, it falls through to the /30
    mate (the informative side when the fringe link is a /30).

    Ordering caveat: when no contra-pivot is known yet, an alive mate at
    ``jh - 1`` is ambiguous — it may be the subnet's own contra-pivot that
    simply has not been examined yet (address order within a level is not
    contra-pivot-first).  In that case the mate is validated H4-style and
    tentatively designated contra-pivot instead of condemning the
    candidate; if a *different* contra-pivot shows up later, H3's
    single-contra-pivot rule still stops the growth.
    """
    for mate in (mate31(candidate), mate30(candidate)):
        if mate == state.contra_pivot or mate == candidate:
            return None
        response = state.prober.probe(mate, state.pivot_distance - 1,
                                      phase=PHASE_EXPLORATION)
        if response is not None and response.is_alive_signal:
            if state.contra_pivot is None and _passes_h4(state, mate):
                state.contra_pivot = mate
                return None
            return Judgement(Verdict.STOP, "H8", "close-fringe interface detected")
        if not _is_unhelpful(response) and not (response is not None
                                                and response.is_ttl_exceeded):
            return None
    return None


def _passes_h4(state: ExplorationState, address: int) -> bool:
    """H4's lower-bound check: not alive two hops short of the pivot."""
    if state.pivot_distance <= 2:
        return True
    two_closer = state.prober.probe(address, state.pivot_distance - 2,
                                    phase=PHASE_EXPLORATION)
    return two_closer is None or not two_closer.is_alive_signal


def _mate_probe_stops(state: ExplorationState, candidate: int, ttl: int,
                      fatal: ResponseType) -> bool:
    """Shared mate-31-then-mate-30 probing pattern of H7."""
    for mate in (mate31(candidate), mate30(candidate)):
        if mate == candidate:
            continue
        response = state.prober.probe(mate, ttl, phase=PHASE_EXPLORATION)
        if response is not None and response.kind == fatal:
            return True
        if not _is_unhelpful(response):
            return False
    return False
