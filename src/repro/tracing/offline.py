"""Offline span trees: any journal in, the deterministic tree out.

``tracenet spans <journal>`` accepts all three journal shapes the project
records and derives the identical tree a live builder produced:

* a **probe journal** (``--record``): the run is replayed through the real
  collector over a :class:`~repro.transport.ReplayTransport` — the same
  machinery as ``tracenet stats`` — with a :class:`SpanBuilder` attached,
  so the rebuilt event stream (and hence the tree) matches the live one
  bit for bit;
* a **session-event journal** (``--events``): the stream is fed straight
  through a builder;
* a **service job journal** (the coordinator's committed ``events.jsonl``,
  shard/attempt-annotated): demuxed through a
  :class:`~repro.tracing.service.ServiceSpanAssembler` into the job →
  lease → trace tree the coordinator assembled live at commit time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..events import event_from_dict
from .service import SHARD_KEY, ServiceSpanAssembler
from .spans import Span, SpanBuilder


def _load_event_payloads(path: str) -> List[Dict]:
    with open(path, "r", encoding="utf-8") as fp:
        return [json.loads(line) for line in fp if line.strip()]


def span_tree_from_journal(path: str,
                           vantage: Optional[str] = None,
                           destination: Optional[int] = None) -> Span:
    """The deterministic span tree of any recorded journal."""
    # Lazy import: repro.metrics.analytics drives the collectors; keep the
    # tracing package importable without pulling that stack in.
    from ..metrics import journal_kind, stats_from_journal

    if journal_kind(path) == "events":
        payloads = _load_event_payloads(path)
        if any(SHARD_KEY in payload for payload in payloads):
            assembler = ServiceSpanAssembler()
            for payload in payloads:
                assembler.feed(payload)
            return assembler.finish()
        builder = SpanBuilder()
        for payload in payloads:
            builder(event_from_dict(payload))
        return builder.finish()
    builder = SpanBuilder()
    stats_from_journal(path, vantage=vantage, destination=destination,
                       extra_sinks=(builder,))
    return builder.finish()
