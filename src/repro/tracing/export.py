"""Chrome trace-event export: span trees as flamegraph-ready JSON.

Writes the ``chrome://tracing`` / Perfetto "trace event" format — a flat
list of complete (``"ph": "X"``) events with microsecond timestamps — from
any *timed* span tree.  Spans without timing stamps (the deterministic
plane) are skipped: a flamegraph of structure without durations would be
fiction.

For service runs, :func:`chrome_trace_for_service` lays the coordinator's
job/lease spans on pid 0 and each completed shard's worker-side timed tree
on its own pid — worker clocks are monotonic but mutually unrelated, so
each tree keeps its own timebase (normalized to its root) instead of
being force-fit onto the coordinator's.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .spans import Span


def _complete_event(span: Span, origin: float, pid: int, tid: int,
                    depth: int) -> Optional[Dict]:
    if span.start is None or span.end is None:
        return None
    return {
        "name": f"{span.kind}:{span.name}",
        "cat": span.kind,
        "ph": "X",
        "ts": round((span.start - origin) * 1e6, 3),
        "dur": round((span.end - span.start) * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": {"depth": depth, "counters": dict(span.counters),
                 "meta": {k: v for k, v in span.meta.items()
                          if isinstance(v, (int, float, str, bool,
                                            type(None)))}},
    }


def chrome_trace_events(root: Span, pid: int = 0, tid: int = 0,
                        origin: Optional[float] = None) -> List[Dict]:
    """Flatten one timed span tree into trace events (untimed spans skip)."""
    if origin is None:
        origin = root.start if root.start is not None else 0.0
    events: List[Dict] = []

    def visit(span: Span, depth: int) -> None:
        event = _complete_event(span, origin, pid, tid, depth)
        if event is not None:
            events.append(event)
        for child in span.children:
            visit(child, depth + 1)

    visit(root, 0)
    return events


def chrome_trace(root: Span, pid: int = 0, tid: int = 0) -> Dict:
    """A complete Chrome trace document for one span tree."""
    return {
        "traceEvents": chrome_trace_events(root, pid=pid, tid=tid),
        "displayTimeUnit": "ms",
    }


def chrome_trace_for_service(job_root: Span,
                             worker_spans: Optional[Dict[int, Dict]] = None,
                             ) -> Dict:
    """Job + lease spans (pid 0) plus per-shard worker trees (pid 1+N).

    ``worker_spans`` maps shard index → the worker's timed span tree as a
    plain dict (``Span.to_dict(timing=True)``), the form it crosses the
    service seam in.
    """
    events: List[Dict] = []
    origin = job_root.start if job_root.start is not None else 0.0
    events.extend(chrome_trace_events(job_root, pid=0, tid=0, origin=origin))
    for shard in sorted(worker_spans or {}):
        payload = (worker_spans or {})[shard]
        if not payload:
            continue
        tree = Span.from_dict(payload)
        events.extend(chrome_trace_events(tree, pid=1 + shard, tid=shard))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, document: Dict) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(document, fp, indent=1, sort_keys=True)
        fp.write("\n")
