"""The deterministic span plane: a tree of work derived from the event stream.

A **span** is one node of the tree that describes where a collection run
spent its probes: the session (or survey) at the root, one span per trace,
one per hop round inside a trace, phase spans (positioning, exploration)
under the hop that triggered the growth, and one leaf span per heuristic
judgement.  The tree is a *pure function of the session-event stream* —
the same contract as :meth:`repro.metrics.MetricsRegistry.snapshot` — so a
live run, a :class:`~repro.transport.ReplayTransport` replay of its
journal, and ``tracenet spans <journal>`` offline all derive the identical
tree, with identical per-span probe / cache-hit / suppression counts.

The **timing plane** is quarantined exactly like ``registry.timings``:
when a :class:`SpanBuilder` is given a monotonic ``clock``, every span is
stamped with first/last-activity times, but those stamps never appear in
the deterministic serialization (:meth:`Span.to_dict` without
``timing=True``).  Wall clocks break record → replay parity; structure and
probe attribution never do.

Attribution rules (all derived from guaranteed event orderings):

* a :class:`~repro.events.TraceStarted` opens a trace span; every event up
  to its :class:`~repro.events.TraceFinished` belongs to it;
* trace-collection-phase probe events open (or join) the **hop span** for
  their TTL — batched pipelines probe several TTLs ahead, so hop spans are
  keyed by TTL, not by arrival order;
* a :class:`~repro.events.HopObserved` marks its hop span as the *current*
  hop: subsequent positioning/exploration events (the growth that hop
  triggered) attach under it, one phase span each;
* exploration-phase probes accumulate in a pending bucket and land on the
  **next** :class:`~repro.events.HeuristicFired` leaf — valid because the
  collector always probes a candidate before recording the judgement;
  whatever is pending when the growth ends stays on the exploration span.

:class:`~repro.events.OverheadViolation` is deliberately ignored: the
auditor re-emits it *during* :class:`~repro.events.SubnetGrown` dispatch,
so its position in the stream depends on sink subscription order — the one
event whose ordering is not deterministic across observers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..events import (
    CacheHit,
    CheckpointWritten,
    DegradedResult,
    HeuristicFired,
    HopObserved,
    ProbeBatchSent,
    ProbeSent,
    ProbeSuppressed,
    SessionEvent,
    SubnetGrown,
    SubnetPositioned,
    SubnetShrunk,
    SurveyProgressed,
    TopologyMutated,
    TraceFinished,
    TraceStarted,
)
from ..netsim.addressing import format_ip

#: Algorithm-phase strings as the probe events carry them (mirrors the
#: PHASE_* constants in repro.core without importing the collectors).
PHASE_TRACE = "trace-collection"
PHASE_POSITIONING = "subnet-positioning"
PHASE_EXPLORATION = "subnet-exploration"


@dataclass(slots=True)
class Span:
    """One node of the span tree.

    ``counters`` holds this span's *own* counts (events attributed
    directly here, not to a descendant); :meth:`total` rolls a counter up
    over the subtree.  ``start``/``end`` are the quarantined timing plane:
    monotonic first/last-activity stamps, present only on clocked live
    builds and excluded from the deterministic :meth:`to_dict`.
    """

    kind: str
    name: str
    meta: Dict = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    start: Optional[float] = None
    end: Optional[float] = None

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def total(self, key: str) -> int:
        """A counter summed over this span and every descendant."""
        value = self.counters.get(key, 0)
        for child in self.children:
            value += child.total(key)
        return value

    @property
    def duration(self) -> Optional[float]:
        """Timed extent (None on the deterministic plane)."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def child(self, kind: str, name: str,
              meta: Optional[Dict] = None) -> "Span":
        span = Span(kind=kind, name=name, meta=dict(meta or {}))
        self.children.append(span)
        return span

    def walk(self):
        """Depth-first iteration over the subtree (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, timing: bool = False) -> Dict:
        """JSON-able tree.  Without ``timing`` the payload is a pure
        function of the event stream (the parity contract); with it, the
        monotonic stamps ride along for flamegraph export."""
        payload: Dict = {
            "kind": self.kind,
            "name": self.name,
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "children": [child.to_dict(timing=timing)
                         for child in self.children],
        }
        if timing and self.start is not None:
            payload["start"] = self.start
            payload["end"] = self.end
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "Span":
        span = cls(
            kind=payload["kind"],
            name=payload["name"],
            meta=dict(payload.get("meta", {})),
            counters=dict(payload.get("counters", {})),
            start=payload.get("start"),
            end=payload.get("end"),
        )
        span.children = [cls.from_dict(child)
                         for child in payload.get("children", [])]
        return span


class SpanBuilder:
    """Streaming span-tree construction: usable directly as an event sink.

    Subscribe an instance to a session-event bus (live) or feed it a
    replayed event sequence (offline) — the resulting :attr:`root` tree is
    identical either way.  ``clock`` (e.g. ``time.perf_counter``) enables
    the timing plane; leave it ``None`` for a deterministic-only build.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 root_kind: str = "session", root_name: str = "session",
                 meta: Optional[Dict] = None):
        self.clock = clock
        self.root = Span(kind=root_kind, name=root_name,
                         meta=dict(meta or {}))
        if clock is not None:
            self.root.start = clock()
        self._trace: Optional[Span] = None
        self._hops: Dict[int, Span] = {}
        self._hop: Optional[Span] = None
        self._growth: Dict[str, Span] = {}
        self._pending: Dict[str, int] = {}
        self._pending_start: Optional[float] = None
        self._handlers = {
            TraceStarted: self._on_trace_started,
            TraceFinished: self._on_trace_finished,
            ProbeSent: self._on_probe,
            CacheHit: self._on_cache_hit,
            ProbeSuppressed: self._on_suppressed,
            ProbeBatchSent: self._on_batch,
            HopObserved: self._on_hop,
            SubnetPositioned: self._on_positioned,
            HeuristicFired: self._on_heuristic,
            SubnetShrunk: self._on_shrunk,
            SubnetGrown: self._on_grown,
            CheckpointWritten: self._on_checkpoint,
            SurveyProgressed: self._on_progress,
            TopologyMutated: self._on_mutation,
            DegradedResult: self._on_degraded,
        }
        # Dispatch-mask interests: producers skip constructing event types
        # the builder ignores (OverheadViolation stays out by design).
        self.interests = tuple(self._handlers)

    # -- sink protocol ---------------------------------------------------

    def __call__(self, event: SessionEvent) -> None:
        cls = type(event)
        # The two dominant event types skip the handler trampoline.
        if cls is ProbeSent:
            self._count_probe("probes", event.phase, event.ttl)
            return
        if cls is CacheHit:
            self._count_probe("cache_hits", event.phase, event.ttl)
            return
        handler = self._handlers.get(cls)
        if handler is not None:
            handler(event)

    def finish(self) -> Span:
        """Seal the tree (drains pending attribution, stamps the root)."""
        self._drain_pending()
        if self._trace is not None:
            self._close_trace()
        if self.clock is not None:
            self.root.end = self.clock()
        return self.root

    # -- internals -------------------------------------------------------

    def _touch(self, span: Span) -> None:
        if self.clock is None:
            return
        now = self.clock()
        if span.start is None:
            span.start = now
        span.end = now

    def _attach_point(self) -> Span:
        return self._trace if self._trace is not None else self.root

    def _hop_span(self, ttl: int) -> Span:
        span = self._hops.get(ttl)
        if span is None:
            span = self._attach_point().child("hop", f"ttl-{ttl}",
                                              meta={"ttl": ttl})
            self._hops[ttl] = span
        self._touch(span)
        return span

    def _phase_span(self, phase: str) -> Span:
        """The growth-phase child of the current hop (lazily created)."""
        span = self._growth.get(phase)
        if span is None:
            parent = self._hop if self._hop is not None \
                else self._attach_point()
            span = parent.child("phase", phase)
            self._growth[phase] = span
        self._touch(span)
        return span

    def _probe_target(self, phase: Optional[str], ttl: Optional[int]) -> Span:
        if phase == PHASE_TRACE and ttl is not None:
            return self._hop_span(ttl)
        if phase in (PHASE_POSITIONING, PHASE_EXPLORATION):
            return self._phase_span(phase)
        span = self._attach_point()
        self._touch(span)
        return span

    def _count_probe(self, key: str, phase: Optional[str],
                     ttl: Optional[int]) -> None:
        # The per-probe-event hot path: every ProbeSent/CacheHit/
        # ProbeSuppressed lands here, so the common cases (an existing hop
        # or phase span) are inlined — dict probe, stamp, count — instead
        # of going through _probe_target/_touch/count call chains.
        clock = self.clock
        if phase == PHASE_EXPLORATION:
            # Exploration probes belong to the *next* heuristic judgement:
            # the collector probes a candidate, then records the verdict.
            pending = self._pending
            pending[key] = pending.get(key, 0) + 1
            span = self._growth.get(PHASE_EXPLORATION)
            if span is None:
                span = self._phase_span(PHASE_EXPLORATION)
            if clock is not None:
                now = clock()
                if self._pending_start is None:
                    self._pending_start = now
                if span.start is None:
                    span.start = now
                span.end = now
            return
        if phase == PHASE_TRACE and ttl is not None:
            span = self._hops.get(ttl)
            if span is None:
                span = self._hop_span(ttl)
            elif clock is not None:
                span.end = clock()
        elif phase == PHASE_POSITIONING:
            span = self._growth.get(phase)
            if span is None:
                span = self._phase_span(phase)
            elif clock is not None:
                span.end = clock()
        else:
            span = self._trace if self._trace is not None else self.root
            if clock is not None:
                now = clock()
                if span.start is None:
                    span.start = now
                span.end = now
        counters = span.counters
        counters[key] = counters.get(key, 0) + 1

    # -- handlers --------------------------------------------------------

    def _on_trace_started(self, event: TraceStarted) -> None:
        if self._trace is not None:
            self._close_trace()
        self._trace = self.root.child(
            "trace", format_ip(event.destination),
            meta={"destination": event.destination})
        self._touch(self._trace)
        self._hops = {}
        self._hop = None
        self._growth = {}

    def _on_trace_finished(self, event: TraceFinished) -> None:
        self._drain_pending()
        trace = self._trace
        if trace is None:
            return
        trace.meta.update(reached=event.reached, hops=event.hops,
                          probes_sent=event.probes_sent,
                          cache_hits=event.cache_hits)
        self._close_trace()

    def _close_trace(self) -> None:
        if self._trace is not None:
            self._touch(self._trace)
        self._trace = None
        self._hops = {}
        self._hop = None
        self._growth = {}

    def _on_mutation(self, event: TopologyMutated) -> None:
        """A churn marker at the attach point — mid-trace mutations become
        children of the trace they interrupted, which is exactly what a
        critical-path reading of a degraded trace needs to see."""
        span = self._attach_point().child(
            "mutation", f"{event.kind}@{event.epoch}",
            meta={"kind": event.kind, "epoch": event.epoch,
                  "sequence": event.sequence, "target": event.target})
        span.count("mutations")
        self._touch(span)

    def _on_degraded(self, event: DegradedResult) -> None:
        trace = self._trace
        if trace is None:
            return
        trace.meta.update(degraded=True, confidence=event.confidence,
                          degraded_reason=event.reason)
        trace.count("degraded")

    def _on_probe(self, event: ProbeSent) -> None:
        self._count_probe("probes", event.phase, event.ttl)

    def _on_cache_hit(self, event: CacheHit) -> None:
        self._count_probe("cache_hits", event.phase, event.ttl)

    def _on_suppressed(self, event: ProbeSuppressed) -> None:
        self._count_probe("suppressed", event.phase, event.ttl)

    def _on_batch(self, event: ProbeBatchSent) -> None:
        # Batches span several TTLs/candidates: attribute to the phase
        # span (exploration/positioning) or the trace itself (ladder).
        if event.phase in (PHASE_POSITIONING, PHASE_EXPLORATION):
            span = self._phase_span(event.phase)
        else:
            span = self._attach_point()
            self._touch(span)
        span.count("batches")
        span.count("batched_probes", event.size)

    def _on_hop(self, event: HopObserved) -> None:
        self._drain_pending()
        span = self._hop_span(event.ttl)
        span.meta["kind"] = event.kind
        span.meta["address"] = event.address
        self._hop = span
        self._growth = {}

    def _on_positioned(self, event: SubnetPositioned) -> None:
        span = self._phase_span(PHASE_POSITIONING)
        span.count("positioned" if event.positioned else "unpositioned")
        span.meta.update(pivot=event.pivot,
                         pivot_distance=event.pivot_distance,
                         on_trace_path=event.on_trace_path)

    def _on_heuristic(self, event: HeuristicFired) -> None:
        parent = self._phase_span(PHASE_EXPLORATION)
        leaf = parent.child("heuristic", event.rule,
                            meta={"candidate": event.candidate,
                                  "verdict": event.verdict})
        leaf.count("fires")
        for key, value in sorted(self._pending.items()):
            leaf.count(key, value)
        self._pending = {}
        if self.clock is not None:
            leaf.start = (self._pending_start
                          if self._pending_start is not None
                          else self.clock())
            leaf.end = self.clock()
            self._pending_start = None

    def _on_shrunk(self, event: SubnetShrunk) -> None:
        span = self._phase_span(PHASE_EXPLORATION)
        span.count("shrinks")
        span.count(f"shrink:{event.rule}")

    def _on_grown(self, event: SubnetGrown) -> None:
        self._drain_pending()
        span = self._phase_span(PHASE_EXPLORATION)
        span.count("subnets")
        span.meta.update(prefix=event.prefix, size=event.size,
                         stop_reason=event.stop_reason,
                         probes_used=event.probes_used,
                         candidates_tested=event.candidates_tested)

    def _on_checkpoint(self, event: CheckpointWritten) -> None:
        self.root.count("checkpoints")
        self._touch(self.root)

    def _on_progress(self, event: SurveyProgressed) -> None:
        self.root.count("progress")
        self.root.meta["targets_done"] = event.completed + event.skipped
        self.root.meta["total_targets"] = event.total_targets
        self._touch(self.root)

    def _drain_pending(self) -> None:
        """Leftover exploration probes (no judgement followed) stay on the
        exploration span itself."""
        if not self._pending:
            self._pending_start = None
            return
        span = self._phase_span(PHASE_EXPLORATION)
        for key, value in sorted(self._pending.items()):
            span.count(key, value)
        self._pending = {}
        self._pending_start = None


def span_tree_from_events(events, clock=None) -> Span:
    """The pure-function form: an event sequence in, the span tree out."""
    builder = SpanBuilder(clock=clock)
    for event in events:
        builder(event)
    return builder.finish()
