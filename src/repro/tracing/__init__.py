"""repro.tracing — deterministic span trees with a quarantined timing plane.

Two coordinated planes over the session-event stream:

* the **deterministic plane** (:class:`SpanBuilder`,
  :func:`span_tree_from_events`) derives a survey → trace → hop →
  heuristic span tree purely from the event sequence, with per-span probe
  / cache-hit / suppression attribution — live == replay == offline
  (:func:`span_tree_from_journal`), the same parity contract as
  :meth:`repro.metrics.MetricsRegistry.snapshot`;
* the **timing plane** annotates the same spans with monotonic-clock
  stamps when a live builder is given a clock, stitches coordinator job →
  shard-lease → worker trace spans across the service seam
  (:class:`ServiceSpanAssembler`), and exports Chrome trace-event JSON
  (:func:`chrome_trace`) plus a critical-path / heuristic-attribution
  report (:mod:`repro.tracing.critical`).

Layering: this package sits beside :mod:`repro.metrics` — it consumes the
event stream and must never import ``repro.netsim.engine`` (sealed by
``tests/test_layering.py``).
"""

from .critical import (
    critical_path,
    growth_outcomes,
    heuristic_attribution,
    per_trace_table,
    render_critical_path,
    render_heuristics_table,
    render_report,
    render_summary,
    span_cost,
)
from .export import (
    chrome_trace,
    chrome_trace_events,
    chrome_trace_for_service,
    write_chrome_trace,
)
from .offline import span_tree_from_journal
from .service import (
    ATTEMPT_KEY,
    SHARD_KEY,
    ServiceSpanAssembler,
    is_service_payload,
    service_span_tree,
)
from .spans import Span, SpanBuilder, span_tree_from_events

__all__ = [
    "ATTEMPT_KEY",
    "SHARD_KEY",
    "ServiceSpanAssembler",
    "Span",
    "SpanBuilder",
    "chrome_trace",
    "chrome_trace_events",
    "chrome_trace_for_service",
    "critical_path",
    "growth_outcomes",
    "heuristic_attribution",
    "is_service_payload",
    "per_trace_table",
    "render_critical_path",
    "render_heuristics_table",
    "render_report",
    "render_summary",
    "service_span_tree",
    "span_cost",
    "span_tree_from_events",
    "span_tree_from_journal",
    "write_chrome_trace",
]
