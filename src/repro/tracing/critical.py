"""Critical-path and heuristic-attribution analytics over a span tree.

The critical path answers "where did the time go": from the root, follow
the most expensive child until a leaf.  On a timed tree (live run with a
clock, or a service job with lease stamps) "expensive" means duration;
when a level has untimed children — the deterministic plane, or worker
trace spans stitched from streamed events — the walk falls back to rolled
up probe cost, which is the paper's own currency (Section 3.6 prices
everything in probes).  A service job therefore reports the slowest
job → shard-lease chain by wall clock and continues into its slowest
trace by probe weight.

The heuristic attribution table answers "where did the probes go, rule by
rule": per H1–H9 fire counts, the probes charged to each rule's
judgements (the pending-probe attribution of :class:`SpanBuilder`),
verdict breakdown, time (when timed) and shrink executions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .spans import PHASE_EXPLORATION, Span


def span_cost(span: Span) -> int:
    """Probe-denominated rollup: wire probes + suppressed stand-ins."""
    return span.total("probes") + span.total("suppressed")


def critical_path(root: Span) -> List[Span]:
    """Root-to-leaf chain of the most expensive spans.

    Children are compared by duration when *every* sibling carries timing
    stamps, by probe cost otherwise; ties keep the earliest sibling
    (deterministic either way).
    """
    path = [root]
    node = root
    while node.children:
        timed = all(child.duration is not None for child in node.children)
        if timed:
            node = max(node.children, key=lambda c: c.duration)
        else:
            node = max(node.children, key=span_cost)
        path.append(node)
    return path


def render_critical_path(path: List[Span]) -> str:
    lines = ["critical path (slowest chain):"]
    for depth, span in enumerate(path):
        cost = span_cost(span)
        timing = (f"{span.duration * 1e3:.2f} ms"
                  if span.duration is not None else "untimed")
        lines.append(f"{'  ' * depth}- {span.kind}:{span.name}  "
                     f"[{cost} probes, {timing}]")
    return "\n".join(lines)


def heuristic_attribution(root: Span) -> Dict[str, Dict]:
    """Per-rule rows: fires, probes charged, verdicts, time, shrinks."""
    rows: Dict[str, Dict] = {}

    def row(rule: str) -> Dict:
        return rows.setdefault(rule, {
            "fires": 0, "probes": 0, "cache_hits": 0,
            "seconds": 0.0, "timed": False, "shrinks": 0,
            "verdicts": {},
        })

    for span in root.walk():
        if span.kind == "heuristic":
            entry = row(span.name)
            entry["fires"] += span.counters.get("fires", 0)
            entry["probes"] += span.counters.get("probes", 0)
            entry["cache_hits"] += span.counters.get("cache_hits", 0)
            verdict = span.meta.get("verdict", "?")
            entry["verdicts"][verdict] = \
                entry["verdicts"].get(verdict, 0) + 1
            if span.duration is not None:
                entry["seconds"] += span.duration
                entry["timed"] = True
        elif span.kind == "phase" and span.name == PHASE_EXPLORATION:
            for key, value in span.counters.items():
                if key.startswith("shrink:"):
                    row(key[len("shrink:"):])["shrinks"] += value
    return rows


def growth_outcomes(root: Span) -> Dict[str, int]:
    """Subnet stop reasons tallied over every exploration span."""
    outcomes: Dict[str, int] = {}
    for span in root.walk():
        if span.kind == "phase" and span.name == PHASE_EXPLORATION:
            reason = span.meta.get("stop_reason")
            if reason is not None:
                outcomes[reason] = outcomes.get(reason, 0) + 1
    return outcomes


def render_heuristics_table(root: Span) -> str:
    """The ``tracenet stats --heuristics`` / ``spans`` report table."""
    rows = heuristic_attribution(root)
    outcomes = growth_outcomes(root)
    lines = ["heuristic attribution (probes charged per judgement):",
             f"{'rule':<18}{'fires':>7}{'probes':>8}{'cache':>7}"
             f"{'shrinks':>9}{'time':>11}  verdicts"]
    for rule in sorted(rows):
        entry = rows[rule]
        timing = (f"{entry['seconds'] * 1e3:8.2f} ms"
                  if entry["timed"] else f"{'—':>11}")
        verdicts = ", ".join(f"{k}={v}" for k, v in
                             sorted(entry["verdicts"].items())) or "—"
        lines.append(f"{rule:<18}{entry['fires']:>7}{entry['probes']:>8}"
                     f"{entry['cache_hits']:>7}{entry['shrinks']:>9}"
                     f"{timing}  {verdicts}")
    if not rows:
        lines.append("(no heuristic judgements in this stream)")
    if outcomes:
        summary = ", ".join(f"{reason}={count}" for reason, count
                            in sorted(outcomes.items()))
        lines.append(f"subnet growth outcomes: {summary}")
    return "\n".join(lines)


def render_summary(root: Span) -> str:
    """One-glance totals for the ``tracenet spans`` report header."""
    traces = sum(1 for span in root.walk() if span.kind == "trace")
    leases = sum(1 for span in root.walk() if span.kind == "lease")
    parts = [f"{root.kind}:{root.name}",
             f"{span_cost(root)} probes",
             f"{root.total('cache_hits')} cache hits",
             f"{root.total('suppressed')} suppressed",
             f"{root.total('subnets')} subnets",
             f"{traces} traces"]
    if leases:
        parts.insert(1, f"{leases} shard leases")
    if root.duration is not None:
        parts.append(f"{root.duration:.3f} s")
    return "  ".join(parts)


def render_report(root: Span) -> str:
    """The default human-readable ``tracenet spans`` output."""
    return "\n\n".join([
        render_summary(root),
        render_critical_path(critical_path(root)),
        render_heuristics_table(root),
    ])


def per_trace_table(root: Span, limit: Optional[int] = 10) -> str:
    """Most expensive traces, one line each (by probe cost)."""
    traces = [span for span in root.walk() if span.kind == "trace"]
    traces.sort(key=span_cost, reverse=True)
    shown = traces if limit is None else traces[:limit]
    lines = [f"top {len(shown)} traces by probe cost:"]
    for span in shown:
        timing = (f" {span.duration * 1e3:.2f} ms"
                  if span.duration is not None else "")
        lines.append(f"  {span.name:<18}{span_cost(span):>6} probes  "
                     f"{span.total('subnets')} subnets"
                     f"  reached={span.meta.get('reached')}{timing}")
    return "\n".join(lines)
