"""Span stitching across the service seam: job → shard lease → trace.

The coordinator annotates every *committed* journal record with the shard
index and lease attempt that produced it (``event_from_dict`` drops the
extra keys on metrics replay, so the annotation is parity-free).  This
module demuxes that annotated stream into one :class:`SpanBuilder` per
``(shard, attempt)`` — a **lease span** — under a single job root:

* the coordinator feeds its assembler at commit time (live);
* ``tracenet spans <events.jsonl>`` feeds an identical assembler from the
  journal file (offline);

and because the committed journal *is* the commit-order event sequence,
both derive bit-identical deterministic trees — including across a killed
worker, where the crashed attempt's lease span holds exactly its
checkpointed (committed) prefix and the re-lease attempt holds the rest.

The timing plane stays quarantined: :meth:`ServiceSpanAssembler.stamp`
lets the coordinator attach lease-clock start/end marks (and the worker's
own timed span tree rides in the shard payload), none of which appear in
the deterministic serialization.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..events import SessionEvent, event_from_dict
from .spans import Span, SpanBuilder

#: Journal-record annotation keys added by the coordinator's commit path.
SHARD_KEY = "shard"
ATTEMPT_KEY = "attempt"


def is_service_payload(payload: Dict) -> bool:
    """True for a journal record annotated with its shard lease."""
    return SHARD_KEY in payload and "event" in payload


class ServiceSpanAssembler:
    """Builds the job span tree from shard-annotated committed events.

    Lease spans appear in first-commit order (deterministic: commit order
    equals journal order), keyed ``(shard, attempt)``.  ``clock`` enables
    coordinator-side lease timing on live assembly; :meth:`stamp` records
    explicit lease lifecycle times (grant/completion) that override the
    activity-based stamps.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock
        self.root = Span(kind="job", name="job")
        if clock is not None:
            self.root.start = clock()
        self._builders: Dict[Tuple[int, int], SpanBuilder] = {}
        self._stamps: Dict[Tuple[int, int], Dict[str, float]] = {}

    def _builder(self, shard: int, attempt: int) -> SpanBuilder:
        key = (shard, attempt)
        builder = self._builders.get(key)
        if builder is None:
            builder = SpanBuilder(
                clock=self.clock, root_kind="lease",
                root_name=f"shard-{shard}-attempt-{attempt}",
                meta={"shard": shard, "attempt": attempt})
            self.root.children.append(builder.root)
            stamp = self._stamps.get(key)
            if stamp and "start" in stamp:
                builder.root.start = stamp["start"]
            self._builders[key] = builder
        return builder

    def feed(self, payload: Dict) -> None:
        """One annotated journal record (live commit or offline line)."""
        shard = payload.get(SHARD_KEY, -1)
        attempt = payload.get(ATTEMPT_KEY, 1)
        self.feed_event(event_from_dict(payload), shard, attempt)

    def feed_event(self, event: SessionEvent, shard: int,
                   attempt: int) -> None:
        """Typed-event form used by the coordinator's live pipeline."""
        self._builder(shard, attempt)(event)

    def stamp(self, shard: int, attempt: int,
              start: Optional[float] = None,
              end: Optional[float] = None) -> None:
        """Record lease lifecycle times (timing plane only)."""
        stamp = self._stamps.setdefault((shard, attempt), {})
        if start is not None:
            stamp["start"] = start
        if end is not None:
            stamp["end"] = end
        builder = self._builders.get((shard, attempt))
        if builder is not None:
            if start is not None:
                builder.root.start = start
            if end is not None:
                builder.root.end = end

    def finish(self) -> Span:
        """Seal every lease builder and return the job root."""
        for key in sorted(self._builders):
            builder = self._builders[key]
            builder.finish()
            stamp = self._stamps.get(key)
            if stamp:
                if "start" in stamp:
                    builder.root.start = stamp["start"]
                if "end" in stamp:
                    builder.root.end = stamp["end"]
        if self.clock is not None:
            self.root.end = self.clock()
        return self.root


def service_span_tree(payloads, clock=None) -> Span:
    """Assemble a job tree from annotated journal records (offline)."""
    assembler = ServiceSpanAssembler(clock=clock)
    for payload in payloads:
        assembler.feed(payload)
    return assembler.finish()
