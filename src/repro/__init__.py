"""TraceNET reproduction: an Internet topology data collector.

Reproduces *Tozal & Sarac, "TraceNET: An Internet Topology Data Collector",
IMC 2010* on a deterministic router-level network simulator.

Quickstart::

    from repro import TraceNET, Engine, TopologyBuilder, ip

    builder = TopologyBuilder("demo")
    builder.link("R1", "R2")
    builder.lan(["R2", "R3", "R4"], length=29)
    stub = builder.link("R4", "R5")
    vantage = builder.edge_host("vantage", "R1")
    engine = Engine(builder.build())

    tool = TraceNET(engine, "vantage")
    result = tool.trace(min(stub.addresses))
    print(result.describe())
"""

from .core import ObservedSubnet, TraceHop, TraceNET, TraceResult
from .events import (
    CounterSink,
    EventBus,
    JsonlEventSink,
    SessionEvent,
)
from .netsim import (
    Engine,
    LoadBalancer,
    LoadBalancingMode,
    Prefix,
    PrefixAllocator,
    Probe,
    Protocol,
    Response,
    ResponsePolicy,
    ResponseType,
    Topology,
    TopologyBuilder,
    format_ip,
    ip,
)
from .probing import ProbeBudget, ProbeBudgetExceeded, Prober
from .radar import RadarResult, RadarRound, RadarRunner, run_radar
from .runner import SurveyProgress, SurveyRunner
from .transport import (
    FaultInjectingTransport,
    ProbeTransport,
    RecordingTransport,
    ReplayTransport,
    SimulatorTransport,
    TransportCapabilities,
)

__version__ = "1.0.0"

__all__ = [
    "CounterSink",
    "Engine",
    "EventBus",
    "FaultInjectingTransport",
    "JsonlEventSink",
    "LoadBalancer",
    "LoadBalancingMode",
    "ObservedSubnet",
    "Prefix",
    "PrefixAllocator",
    "Probe",
    "ProbeBudget",
    "ProbeBudgetExceeded",
    "Prober",
    "ProbeTransport",
    "Protocol",
    "RadarResult",
    "RadarRound",
    "RadarRunner",
    "RecordingTransport",
    "ReplayTransport",
    "SessionEvent",
    "SimulatorTransport",
    "SurveyProgress",
    "SurveyRunner",
    "Response",
    "ResponsePolicy",
    "ResponseType",
    "Topology",
    "TopologyBuilder",
    "TraceHop",
    "TraceNET",
    "TraceResult",
    "TransportCapabilities",
    "format_ip",
    "ip",
    "run_radar",
]
