"""GEANT-like ground-truth topology (paper Section 4.1, Table 2).

Table 2's ``orgl`` row: 271 subnets, only /28–/30 ("published GEANT
topology mostly consists of /30 and /29 subnets").  GEANT's distinguishing
feature in the paper is how much of it would not answer probes: 97 of 271
subnets are totally unresponsive and another 25 partially so — which is why
the raw exact-match rate (53.5%) looks poor while the rate over observable
subnets (97.3%) is excellent.
"""

from __future__ import annotations

import random
from typing import List

from .spec import GeneratedNetwork, NetworkBlueprint, add_vantage, synthesize

#: Table 2 "orgl" row: prefix length -> number of subnets.
ORIGINAL_DISTRIBUTION = {28: 24, 29: 109, 30: 138}

#: Table 2 "miss\unrs" row: totally unresponsive subnets.
FIREWALLED = {28: 10, 29: 53, 30: 34}

#: Table 2 "undes\unrs" row: partially unresponsive subnets.
PARTIALLY_SILENT = {28: 11, 29: 14}

#: Table 2 "miss" row: one /29 missed through sparse utilization.
SPARSE = {29: 1}

#: Table 2 "undes" row: three /28s naturally underestimated.
UNDERUTILIZED = {28: 3}


def blueprint(seed: int = 2010) -> NetworkBlueprint:
    """The GEANT blueprint (Table 2 ground truth)."""
    return NetworkBlueprint(
        name="geant",
        seed=seed,
        base="62.40.96.0/19",
        distribution=dict(ORIGINAL_DISTRIBUTION),
        firewalled=dict(FIREWALLED),
        partial=dict(PARTIALLY_SILENT),
        sparse=dict(SPARSE),
        underutilized=dict(UNDERUTILIZED),
        backbone_routers=12,
        chords=4,
    )


def build(seed: int = 2010, vantage: str = "utdallas") -> GeneratedNetwork:
    """Synthesize GEANT with the paper's single UT Dallas vantage."""
    network = synthesize(blueprint(seed))
    add_vantage(network, vantage)
    network.topology.validate()
    return network


def targets(network: GeneratedNetwork, seed: int = 2010) -> List[int]:
    """One random address per original subnet (the paper's target set)."""
    return network.pick_targets(random.Random(seed ^ 0x6EA47))
