"""Hand-built topologies reproducing the paper's illustrative figures.

* :func:`figure2_network` — the 9-router network of Figure 2, where paths
  P1 (A→D) and P3 (B→C) look node/link-disjoint to traceroute but share the
  central multi-access LAN that only tracenet reveals.
* :func:`figure3_network` — the subnet-exploration scene of Figure 3: a
  pivot/contra-pivot LAN with far-fringe and close-fringe neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..netsim.builder import TopologyBuilder
from ..netsim.engine import Engine
from ..netsim.topology import Host, Topology


@dataclass
class FigureNetwork:
    """A figure topology plus the handles its experiments need."""

    topology: Topology
    hosts: Dict[str, Host]
    landmarks: Dict[str, str]  # logical name -> subnet_id

    def engine(self, **kwargs) -> Engine:
        return Engine(self.topology, **kwargs)


def figure2_network() -> FigureNetwork:
    """The Figure 2 topology.

    Routers R1..R9 (R7 exists in the real network but never appears on the
    traced paths), hosts A, B, C, D.  The central multi-access LAN joins
    R2, R4, R5 and R8 — the link P1 and P3 both cross without traceroute
    noticing.
    """
    builder = TopologyBuilder("figure2")
    builder.routers([f"R{i}" for i in range(1, 10)])

    # Row 1 (top): R1 - R2; row 2: R3 - R4 - R5; row 3: R6 .. R7 - R8 - R9.
    # R6-R7 is omitted so P3 = B,R6,R3,R4,R8,C crosses the shared LAN as in
    # the paper's figure (with it, shortest-path routing would route P3
    # through R7 and the demo's premise would not hold).
    builder.link("R1", "R2")
    builder.link("R3", "R4")
    builder.link("R4", "R5")
    builder.link("R6", "R3")
    builder.link("R7", "R8")
    builder.link("R8", "R9")
    builder.link("R5", "R9")
    builder.link("R1", "R3")

    # The shared multi-access LAN of the figure: R2, R4, R5, R8.
    shared = builder.lan(["R2", "R4", "R5", "R8"], length=29)

    hosts = {
        "A": builder.edge_host("A", "R1"),
        "B": builder.edge_host("B", "R6"),
        "C": builder.edge_host("C", "R8"),
        "D": builder.edge_host("D", "R9"),
    }
    topology = builder.build()
    return FigureNetwork(
        topology=topology,
        hosts=hosts,
        landmarks={"shared_lan": shared.subnet_id},
    )


def figure3_network() -> FigureNetwork:
    """The Figure 3 subnet-exploration scene.

    The vantage sits two hops from ingress router R2; the /24 LAN under
    investigation joins R2 (contra-pivot side), R3, R4 and R6; R7 hangs off
    R2 (its interfaces are close fringe) and R5 hangs off R4 (far fringe).
    """
    builder = TopologyBuilder("figure3")
    builder.routers(["R1", "R2", "R3", "R4", "R5", "R6", "R7"])
    builder.link("R1", "R2")
    lan = builder.lan(["R2", "R3", "R4", "R6"], length=24)
    builder.link("R2", "R7")   # close fringe: R7's link shares router R2
    builder.link("R4", "R5")   # far fringe: R5 is one hop past the LAN
    hosts = {"vantage": builder.edge_host("vantage", "R1")}
    topology = builder.build()
    return FigureNetwork(
        topology=topology,
        hosts=hosts,
        landmarks={"subnet_s": lan.subnet_id},
    )
