"""Internet2-like ground-truth topology (paper Section 4.1, Table 1).

The blueprint reproduces the *original* subnet prefix distribution of
Table 1's ``orgl`` row — 179 subnets, mostly point-to-point /30 links with a
handful of larger LANs — plus the observability structure the authors found
when they probed every address of the missed/underestimated subnets:

* 21 totally unresponsive subnets (the ``miss\\unrs`` row),
* 19 partially unresponsive /28s (the ``undes\\unrs`` row),
* 3 naturally missed subnets (scattered sparse utilization),
* 3 naturally underestimated subnets (one small contiguous cluster — the
  paper's two /28s "with only 2 / only 5 addresses utilized").
"""

from __future__ import annotations

import random
from typing import List

from .spec import GeneratedNetwork, NetworkBlueprint, add_vantage, synthesize

#: Table 1 "orgl" row: prefix length -> number of subnets.
ORIGINAL_DISTRIBUTION = {24: 6, 25: 1, 26: 0, 27: 2, 28: 26, 29: 20, 30: 101, 31: 23}

#: Table 1 "miss\unrs" row: totally unresponsive subnets.
FIREWALLED = {24: 4, 25: 1, 27: 2, 28: 1, 29: 4, 30: 8, 31: 1}

#: Table 1 "undes\unrs" row: partially unresponsive subnets.
PARTIALLY_SILENT = {28: 19}

#: Table 1 "miss" row: subnets missed for non-responsiveness reasons.
SPARSE = {24: 1, 28: 2}

#: Table 1 "undes" row: natural underestimations (sparse but clustered).
UNDERUTILIZED = {24: 1, 28: 2}


def blueprint(seed: int = 2010) -> NetworkBlueprint:
    """The Internet2 blueprint (Table 1 ground truth)."""
    return NetworkBlueprint(
        name="internet2",
        seed=seed,
        base="64.57.0.0/16",
        distribution=dict(ORIGINAL_DISTRIBUTION),
        firewalled=dict(FIREWALLED),
        partial=dict(PARTIALLY_SILENT),
        sparse=dict(SPARSE),
        underutilized=dict(UNDERUTILIZED),
        backbone_routers=9,  # Internet2's nine-node backbone
        chords=3,
    )


def build(seed: int = 2010, vantage: str = "utdallas") -> GeneratedNetwork:
    """Synthesize Internet2 with the paper's single UT Dallas vantage."""
    network = synthesize(blueprint(seed))
    add_vantage(network, vantage)
    network.topology.validate()
    return network


def targets(network: GeneratedNetwork, seed: int = 2010) -> List[int]:
    """One random address per original subnet (the paper's target set)."""
    return network.pick_targets(random.Random(seed ^ 0x5EED))
