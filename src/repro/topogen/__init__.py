"""Ground-truth topology generators for the paper's experiments."""

from . import figures, geant, internet2, isp, random_topo
from .isp import ISPProfile, MultiISPNetwork, build_internet, default_profiles
from .spec import (
    GeneratedNetwork,
    NetworkBlueprint,
    SubnetRecord,
    add_vantage,
    synthesize,
)

__all__ = [
    "GeneratedNetwork",
    "ISPProfile",
    "MultiISPNetwork",
    "NetworkBlueprint",
    "SubnetRecord",
    "add_vantage",
    "build_internet",
    "default_profiles",
    "figures",
    "geant",
    "internet2",
    "isp",
    "random_topo",
    "synthesize",
]
