"""Four commercial ISP backbones + a transit core (paper Section 4.2).

The paper traces a common target set inside Sprintlink, AboveNet, Level3
and NTT America from three PlanetLab vantage points (Rice, UOregon, UMass)
and cross-validates the collected subnets.  We synthesize each ISP from a
profile that captures what the paper's figures report about it:

* Sprintlink — the largest subnet count, but the least responsive (rate
  limiting + silent interfaces: many un-subnetized addresses in Figure 7);
* NTT America — the most responsive, and the ISP with *large* subnets
  (/22–/24): most subnetized IPs (Figure 7) yet fewest subnets (Figure 8);
* Level3 / AboveNet — intermediate profiles;
* per-router protocol bias ordered ICMP >> UDP >> TCP (Table 3).

The ISPs are merged into one internet: border routers peer with each other
and with three access routers, one per vantage point, so each vantage
enters every ISP through a different border.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netsim.addressing import Prefix
from ..netsim.builder import PrefixAllocator, TopologyBuilder
from ..netsim.packet import Protocol
from ..netsim.responsiveness import ResponsePolicy
from ..netsim.topology import Host, Topology
from .spec import GeneratedNetwork, NetworkBlueprint, synthesize

VANTAGE_SITES = ("rice", "uoregon", "umass")


@dataclass
class ISPProfile:
    """Synthesis profile for one ISP."""

    name: str
    base: str
    distribution: Dict[int, int]
    firewalled: Dict[int, int] = field(default_factory=dict)
    partial: Dict[int, int] = field(default_factory=dict)
    multihomed: Dict[int, int] = field(default_factory=dict)
    backbone_routers: int = 10
    chords: int = 3
    #: fraction of routers answering each probe protocol (Table 3 driver)
    protocol_rates: Dict[Protocol, float] = field(default_factory=dict)
    #: fraction of routers behind an ICMP rate limiter
    rate_limited_fraction: float = 0.0
    rate_capacity: float = 12.0
    rate_refill: float = 0.05


def default_profiles(scale: float = 1.0) -> List[ISPProfile]:
    """The four ISP profiles, optionally scaled down for quick runs.

    ``scale=1.0`` gives the full-size networks used by the benches;
    smaller values shrink every subnet count proportionally (minimum 1).
    """

    def scaled(counts: Dict[int, int]) -> Dict[int, int]:
        return {length: max(1, int(round(count * scale)))
                for length, count in counts.items()}

    return [
        ISPProfile(
            name="sprintlink",
            base="144.232.0.0/16",
            distribution=scaled({31: 55, 30: 80, 29: 26, 28: 7, 27: 2, 24: 2}),
            firewalled=scaled({30: 6, 29: 3}),
            partial=scaled({29: 8, 28: 3}),
            multihomed=scaled({29: 2}),
            backbone_routers=12,
            protocol_rates={Protocol.ICMP: 0.97, Protocol.UDP: 0.55,
                            Protocol.TCP: 0.08},
            rate_limited_fraction=0.50,
            rate_capacity=4.0,
            rate_refill=0.015,
        ),
        ISPProfile(
            name="ntt",
            base="129.250.0.0/16",
            distribution=scaled({31: 18, 30: 36, 29: 9, 28: 4, 26: 2,
                                 24: 2, 23: 1, 22: 1}),
            firewalled=scaled({30: 2}),
            partial=scaled({29: 1}),
            backbone_routers=8,
            protocol_rates={Protocol.ICMP: 0.99, Protocol.UDP: 0.3,
                            Protocol.TCP: 0.06},
            rate_limited_fraction=0.12,
            rate_capacity=8.0,
            rate_refill=0.04,
        ),
        ISPProfile(
            name="level3",
            base="4.68.0.0/16",
            distribution=scaled({31: 40, 30: 65, 29: 20, 28: 5, 27: 1, 24: 1}),
            firewalled=scaled({30: 4}),
            partial=scaled({29: 4, 28: 1}),
            multihomed=scaled({29: 2}),
            backbone_routers=10,
            protocol_rates={Protocol.ICMP: 0.97, Protocol.UDP: 0.5,
                            Protocol.TCP: 0.08},
            rate_limited_fraction=0.38,
            rate_capacity=5.0,
            rate_refill=0.02,
        ),
        ISPProfile(
            name="abovenet",
            base="64.125.0.0/16",
            distribution=scaled({31: 26, 30: 48, 29: 12, 28: 3, 25: 1}),
            firewalled=scaled({30: 3}),
            partial=scaled({29: 2}),
            backbone_routers=9,
            protocol_rates={Protocol.ICMP: 0.97, Protocol.UDP: 0.5,
                            Protocol.TCP: 0.15},
            rate_limited_fraction=0.32,
            rate_capacity=5.0,
            rate_refill=0.02,
        ),
    ]


#: Mean fraction of a LAN block's host capacity that synthesis assigns
#: (midpoint of NetworkBlueprint.lan_utilization) — used to size scale
#: profiles to an interface budget.
_MEAN_LAN_UTILIZATION = 0.865

#: Interface-budget split across LAN sizes in scale profiles: half the
#: interfaces in /22s, the rest split between /21s and /20s.
_SCALE_LAN_MIX = ((20, 0.20), (21, 0.30), (22, 0.50))


def scale_profiles(interfaces: int, isp_count: int = 4) -> List[ISPProfile]:
    """ISP profiles sized to a total interface budget (scale testing).

    Unlike :func:`default_profiles` (shaped after the paper's four
    backbones), these profiles exist to stress construction and routing at
    10^5–10^6 interfaces: each ISP draws from its own /12 inside 10/8 and
    spends its interface share on large multi-access LANs (/20–/22, the
    exploration floor), plus a fixed point-to-point backbone.  Behavioural
    injections are disabled — no firewalled or partially silent subnets,
    no rate limiting — so the scale lanes measure graph construction and
    probe dispatch, not response-policy modelling.
    """
    if interfaces < isp_count * 1000:
        raise ValueError(
            f"scale budget {interfaces} too small for {isp_count} ISPs")
    share = interfaces // isp_count
    profiles: List[ISPProfile] = []
    for index in range(isp_count):
        distribution: Dict[int, int] = {31: 24, 30: 40}
        for length, fraction in _SCALE_LAN_MIX:
            capacity = (1 << (32 - length)) - 2
            mean_members = capacity * _MEAN_LAN_UTILIZATION
            count = max(1, round(share * fraction / mean_members))
            distribution[length] = count
        profiles.append(ISPProfile(
            name=f"scale{index}",
            base=f"10.{index * 16}.0.0/12",
            distribution=distribution,
            backbone_routers=16,
            chords=4,
            protocol_rates={Protocol.ICMP: 0.97, Protocol.UDP: 0.5,
                            Protocol.TCP: 0.1},
            rate_limited_fraction=0.0,
        ))
    return profiles


@dataclass
class MultiISPNetwork:
    """Four ISPs, a transit core, and three vantage points — one internet."""

    topology: Topology
    policy: ResponsePolicy
    isps: Dict[str, GeneratedNetwork]
    vantages: Dict[str, Host]
    profiles: Dict[str, ISPProfile]

    def isp_of(self, address: int) -> Optional[str]:
        """Which ISP's address space ``address`` belongs to (None: transit)."""
        for name, profile in self.profiles.items():
            if address in Prefix.parse(profile.base):
                return name
        return None

    def isp_of_prefix(self, prefix: Prefix) -> Optional[str]:
        return self.isp_of(prefix.network)

    def targets(self, seed: int = 0, per_isp: Optional[int] = None
                ) -> Dict[str, List[int]]:
        """A common target set: assigned addresses inside each ISP.

        Mirrors the paper's 34 084-address set (scaled): targets are drawn
        from the ISPs' own address space, not their customers'.
        """
        rng = random.Random(seed)
        per_isp_targets: Dict[str, List[int]] = {}
        for name, network in self.isps.items():
            addresses = sorted(
                address
                for record in network.records
                for address in network.topology.subnets[record.subnet_id].addresses
            )
            if per_isp is not None and per_isp < len(addresses):
                addresses = sorted(rng.sample(addresses, per_isp))
            per_isp_targets[name] = addresses
        return per_isp_targets

    def targets_proportional(self, seed: int = 0, total: int = 300
                             ) -> Dict[str, List[int]]:
        """A target set weighted by each ISP's subnet population.

        The paper's 34 084-address set covers each ISP's infrastructure
        broadly; a flat per-ISP quota would over-sample the small ISPs.
        Weighting by subnet count keeps Figure 8's shape: Sprintlink (the
        most subnets) receives the most targets, NTT America the fewest —
        and NTT's land mostly inside its few large LANs.
        """
        rng = random.Random(seed)
        weights = {name: len(network.records)
                   for name, network in self.isps.items()}
        weight_sum = sum(weights.values())
        grouped: Dict[str, List[int]] = {}
        for name, network in sorted(self.isps.items()):
            addresses = sorted(
                address
                for record in network.records
                for address in network.topology.subnets[record.subnet_id].addresses
            )
            quota = max(1, round(total * weights[name] / weight_sum))
            if quota < len(addresses):
                addresses = sorted(rng.sample(addresses, quota))
            grouped[name] = addresses
        return grouped


def build_internet(seed: int = 42, scale: float = 1.0,
                   profiles: Optional[List[ISPProfile]] = None,
                   vantage_sites=VANTAGE_SITES,
                   validate: bool = True) -> MultiISPNetwork:
    """Synthesize the ISPs, peer them, and attach the vantage points.

    ``validate=False`` skips the final structural validation pass (an
    O(interfaces) flood fill — correct by construction here, and worth
    skipping when building million-interface scale topologies twice in a
    bench run).
    """
    if profiles is None:
        profiles = default_profiles(scale)
    rng = random.Random(seed)
    builder = TopologyBuilder("internet", allocator=PrefixAllocator("198.18.0.0/16"))
    policy = ResponsePolicy(seed=seed)

    isps: Dict[str, GeneratedNetwork] = {}
    for index, profile in enumerate(profiles):
        blueprint = NetworkBlueprint(
            name=profile.name,
            seed=seed + 101 * (index + 1),
            base=profile.base,
            distribution=profile.distribution,
            firewalled=profile.firewalled,
            partial=profile.partial,
            multihomed=profile.multihomed,
            backbone_routers=profile.backbone_routers,
            chords=profile.chords,
        )
        # Each ISP allocates out of its own base block.
        sub_builder = TopologyBuilder.wrap(builder.topology,
                                           allocator=PrefixAllocator(profile.base))
        network = synthesize(blueprint, builder=sub_builder, policy=policy,
                             namespace=profile.name)
        isps[profile.name] = network

    _peer_isps(builder, isps, rng)
    vantages = _attach_vantages(builder, isps, rng, vantage_sites)
    _apply_isp_policies(builder.topology, policy, profiles, seed)
    if validate:
        builder.topology.validate()
    return MultiISPNetwork(
        topology=builder.topology,
        policy=policy,
        isps=isps,
        vantages=vantages,
        profiles={profile.name: profile for profile in profiles},
    )


def _peer_isps(builder: TopologyBuilder, isps: Dict[str, GeneratedNetwork],
               rng: random.Random) -> None:
    """Private peering links between every ISP pair (neutral address space)."""
    names = sorted(isps)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            for _ in range(2):
                border_a = rng.choice(isps[a].border_router_ids)
                border_b = rng.choice(isps[b].border_router_ids)
                builder.link(border_a, border_b, length=30)


def _attach_vantages(builder: TopologyBuilder, isps: Dict[str, GeneratedNetwork],
                     rng: random.Random, vantage_sites) -> Dict[str, Host]:
    """One access router per vantage, each homed to two distinct ISPs."""
    names = sorted(isps)
    vantages: Dict[str, Host] = {}
    for index, site in enumerate(vantage_sites):
        access = builder.router(f"transit:{site}-gw").router_id
        # Rotate the homing so every vantage enters the ISPs differently.
        first = names[index % len(names)]
        second = names[(index + 1) % len(names)]
        for isp_name in (first, second):
            borders = isps[isp_name].border_router_ids
            builder.link(access, rng.choice(borders), length=30)
        vantages[site] = builder.edge_host(site, access)
    return vantages


def _apply_isp_policies(topology: Topology, policy: ResponsePolicy,
                        profiles: List[ISPProfile], seed: int) -> None:
    """Sample per-router protocol bias and rate limiting per ISP."""
    rng = random.Random(seed ^ 0xB1A5)
    for profile in profiles:
        prefix_tag = f"{profile.name}:"
        router_ids = sorted(r for r in topology.routers if r.startswith(prefix_tag))
        for router_id in router_ids:
            draw = rng.random()
            for protocol, rate in profile.protocol_rates.items():
                if draw >= rate:
                    policy.refuse_protocol(router_id, protocol)
            if rng.random() < profile.rate_limited_fraction:
                policy.rate_limit_router(router_id,
                                         capacity=profile.rate_capacity,
                                         refill_per_tick=profile.rate_refill)
