"""Declarative ground-truth network synthesis.

The paper evaluates tracenet against networks whose subnet inventories are
known: Internet2 and GEANT (derived from published data) and four commercial
ISP backbones (cross-validated between vantage points).  This module builds
such networks from a :class:`NetworkBlueprint` — a subnet prefix-length
distribution plus injection counts for the behaviours that shape the
evaluation: firewalled (totally unresponsive) subnets, partially silent
subnets, sparsely utilized subnets, and multi-homed LANs that defeat the
single-ingress assumption.

The synthesis recipe:

* point-to-point plans (/30, /31) first form a backbone ring with chords,
  then grow random trees off it — giving paths of varied length;
* multi-access LAN plans anchor on a random existing router (the ingress)
  and hang new stub routers off the LAN;
* all randomness flows from one seeded PRNG, so a blueprint is a complete,
  reproducible description of an experiment's ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netsim.addressing import Prefix
from ..netsim.builder import PrefixAllocator, TopologyBuilder
from ..netsim.responsiveness import ResponsePolicy
from ..netsim.topology import Host, Topology


@dataclass
class NetworkBlueprint:
    """Everything needed to synthesize one network deterministically."""

    name: str
    seed: int
    distribution: Dict[int, int]
    base: str = "10.0.0.0/8"
    #: per-prefix-length counts of totally unresponsive (firewalled) subnets
    firewalled: Dict[int, int] = field(default_factory=dict)
    #: per-prefix-length counts of partially silent subnets
    partial: Dict[int, int] = field(default_factory=dict)
    #: per-prefix-length counts of sparsely utilized subnets (scattered
    #: addresses; tracenet typically collects nothing larger than /32)
    sparse: Dict[int, int] = field(default_factory=dict)
    #: per-prefix-length counts of under-utilized subnets (one small
    #: contiguous cluster; tracenet collects a smaller observable subnet)
    underutilized: Dict[int, int] = field(default_factory=dict)
    #: per-prefix-length counts of multi-homed LANs
    multihomed: Dict[int, int] = field(default_factory=dict)
    backbone_routers: int = 10
    chords: int = 3
    lan_utilization: Tuple[float, float] = (0.78, 0.95)
    partial_silent_fraction: Tuple[float, float] = (0.35, 0.6)
    sparse_members: int = 2
    #: fraction of routers answering indirect probes with the shortest-path
    #: interface / a default address instead of the incoming interface
    #: (paper §3.1(iii); the rest are incoming-interface routers)
    shortest_path_fraction: float = 0.08
    default_iface_fraction: float = 0.04
    #: fraction of routers with randomized IP-ID fields (defeats Ally)
    random_ip_id_fraction: float = 0.15

    def total_subnets(self) -> int:
        return sum(self.distribution.values())


@dataclass
class SubnetRecord:
    """Ground truth about one synthesized subnet."""

    subnet_id: str
    prefix: Prefix
    kind: str  # "p2p" | "lan"
    firewalled: bool = False
    partially_silent: bool = False
    sparse: bool = False
    underutilized: bool = False
    multihomed: bool = False
    silent_addresses: List[int] = field(default_factory=list)

    @property
    def unresponsive(self) -> bool:
        """True when the subnet's observability is limited by policy, not
        by tracenet (the paper's ``\\unrs`` qualifier)."""
        return self.firewalled or self.partially_silent


@dataclass
class GeneratedNetwork:
    """A synthesized network plus its ground truth and response policy."""

    name: str
    blueprint: NetworkBlueprint
    topology: Topology
    policy: ResponsePolicy
    records: List[SubnetRecord]
    vantages: Dict[str, Host] = field(default_factory=dict)
    border_router_ids: List[str] = field(default_factory=list)

    @property
    def ground_truth(self) -> List[Prefix]:
        """Every planned subnet block (excludes vantage stubs)."""
        return [record.prefix for record in self.records]

    def record_for(self, prefix: Prefix) -> Optional[SubnetRecord]:
        for record in self.records:
            if record.prefix == prefix:
                return record
        return None

    def responsive_interface_addresses(self) -> List[int]:
        """Assigned, un-silenced addresses inside planned subnets."""
        addresses: List[int] = []
        for record in self.records:
            subnet = self.topology.subnets[record.subnet_id]
            for address in subnet.addresses:
                if address not in record.silent_addresses:
                    addresses.append(address)
        return addresses

    def pick_targets(self, rng: random.Random,
                     per_subnet: int = 1,
                     include_firewalled: bool = True) -> List[int]:
        """One (or more) assigned addresses per planned subnet.

        This mirrors the paper's destination-set construction for Internet2
        and GEANT: "a random IP address from each of their original
        subnets".  Firewalled subnets stay in the target set by default —
        their unreachability is part of the experiment.  In partially
        silent subnets the responsive addresses are preferred (a silent
        target would leave the subnet unvisited rather than partially
        collected, which is not what the paper observed).
        """
        targets: List[int] = []
        for record in self.records:
            if record.firewalled and not include_firewalled:
                continue
            subnet = self.topology.subnets[record.subnet_id]
            addresses = sorted(set(subnet.addresses) - set(record.silent_addresses))
            if not addresses:
                addresses = sorted(subnet.addresses)
            count = min(per_subnet, len(addresses))
            targets.extend(rng.sample(addresses, count))
        return targets


def synthesize(blueprint: NetworkBlueprint,
               builder: Optional[TopologyBuilder] = None,
               policy: Optional[ResponsePolicy] = None,
               namespace: Optional[str] = None,
               validate: bool = True) -> GeneratedNetwork:
    """Build a network from a blueprint.

    Passing an existing ``builder``/``policy`` merges several blueprints
    into one internet (used by the multi-ISP experiments); ``namespace``
    prefixes router ids so merged blueprints cannot collide.
    """
    rng = random.Random(blueprint.seed)
    prefix_tag = namespace if namespace is not None else blueprint.name
    own_builder = builder is None
    if own_builder:
        builder = TopologyBuilder(blueprint.name,
                                  allocator=PrefixAllocator(blueprint.base))
        allocator = builder.allocator
    else:
        allocator = PrefixAllocator(blueprint.base)
    if policy is None:
        policy = ResponsePolicy(seed=blueprint.seed)

    plans = _expand_plans(blueprint, rng)
    p2p_plans = [plan for plan in plans if plan["length"] >= 30]
    lan_plans = [plan for plan in plans if plan["length"] < 30]
    rng.shuffle(p2p_plans)
    rng.shuffle(lan_plans)

    records: List[SubnetRecord] = []
    router_counter = [0]

    def new_router() -> str:
        router_counter[0] += 1
        return builder.router(f"{prefix_tag}:r{router_counter[0]}").router_id

    backbone = _build_backbone(blueprint, builder, allocator, p2p_plans,
                               records, new_router, prefix_tag)
    attachable = list(backbone)

    # Remaining point-to-point plans grow random trees off the network.
    for plan in p2p_plans:
        anchor = rng.choice(attachable)
        leaf = new_router()
        block = allocator.allocate(plan["length"])
        subnet = builder.link(anchor, leaf, prefix=block)
        records.append(_record(subnet, "p2p", plan))
        attachable.append(leaf)

    # Multi-access LANs anchor on an existing (ingress) router.
    for plan in lan_plans:
        anchor = rng.choice(attachable)
        block = allocator.allocate(plan["length"])
        members, silent = _plan_lan_membership(blueprint, rng, block, plan)
        assignment: Dict[str, int] = {}
        member_routers: List[str] = []
        anchor_routers = [anchor]
        if plan["multihomed"]:
            second = rng.choice([r for r in attachable if r != anchor])
            anchor_routers.append(second)
        for index, address in enumerate(members):
            if index < len(anchor_routers):
                router_id = anchor_routers[index]
            else:
                router_id = new_router()
                member_routers.append(router_id)
            assignment[router_id] = address
        subnet = builder.lan(assignment, prefix=block)
        record = _record(subnet, "lan", plan)
        record.silent_addresses = silent
        records.append(record)
        attachable.extend(member_routers)

    _apply_policy(policy, builder, records)
    _apply_router_variety(blueprint, builder, rng, prefix_tag)
    network = GeneratedNetwork(
        name=blueprint.name,
        blueprint=blueprint,
        topology=builder.topology,
        policy=policy,
        records=records,
        border_router_ids=list(backbone),
    )
    if own_builder and validate:
        builder.build()
    return network


def add_vantage(network: GeneratedNetwork, host_id: str,
                gateway_router_id: Optional[str] = None,
                stub_base: str = "192.168.0.0/16") -> Host:
    """Attach a vantage point host behind a stub /30 (not ground truth)."""
    builder = TopologyBuilder.wrap(network.topology,
                                   allocator=PrefixAllocator(stub_base))
    # Skip blocks already taken by earlier vantage stubs.
    taken = [s.prefix for s in network.topology.subnets.values()
             if s.prefix.network in builder.allocator.base]
    for _ in taken:
        builder.allocator.allocate(30)
    if gateway_router_id is None:
        gateway_router_id = network.border_router_ids[0]
    host = builder.edge_host(host_id, gateway_router_id)
    network.vantages[host_id] = host
    return host


# -- internals ---------------------------------------------------------------


def _expand_plans(blueprint: NetworkBlueprint, rng: random.Random) -> List[Dict]:
    """Turn the distribution + injection counts into per-subnet plans."""
    plans: List[Dict] = []
    for length, count in sorted(blueprint.distribution.items()):
        flags = (["firewalled"] * blueprint.firewalled.get(length, 0)
                 + ["partial"] * blueprint.partial.get(length, 0)
                 + ["sparse"] * blueprint.sparse.get(length, 0)
                 + ["underutilized"] * blueprint.underutilized.get(length, 0)
                 + ["multihomed"] * blueprint.multihomed.get(length, 0))
        if len(flags) > count:
            raise ValueError(
                f"{blueprint.name}: /{length} injections exceed distribution"
            )
        flags += ["plain"] * (count - len(flags))
        rng.shuffle(flags)
        for flag in flags:
            plans.append({
                "length": length,
                "firewalled": flag == "firewalled",
                "partial": flag == "partial",
                "sparse": flag == "sparse",
                "underutilized": flag == "underutilized",
                "multihomed": flag == "multihomed" and length < 30,
            })
    return plans


def _build_backbone(blueprint: NetworkBlueprint, builder: TopologyBuilder,
                    allocator: PrefixAllocator, p2p_plans: List[Dict],
                    records: List[SubnetRecord], new_router,
                    prefix_tag: str) -> List[str]:
    """Ring + chords consuming point-to-point plans; returns backbone ids."""
    ring_size = min(blueprint.backbone_routers,
                    max(3, len(p2p_plans) - blueprint.chords))
    if len(p2p_plans) < 3:
        # Degenerate blueprint: a single chain is the best we can do.
        ring_size = 0
    backbone = [new_router() for _ in range(max(ring_size, 1))]
    if ring_size >= 3:
        edges = [(backbone[i], backbone[(i + 1) % ring_size])
                 for i in range(ring_size)]
        rng = random.Random(blueprint.seed + 1)
        for _ in range(blueprint.chords):
            if len(backbone) < 4 or len(p2p_plans) <= len(edges):
                break
            a, b = rng.sample(backbone, 2)
            if (a, b) not in edges and (b, a) not in edges:
                edges.append((a, b))
        for a, b in edges:
            if not p2p_plans:
                break
            plan = p2p_plans.pop()
            block = allocator.allocate(plan["length"])
            subnet = builder.link(a, b, prefix=block)
            records.append(_record(subnet, "p2p", plan))
    return backbone


def _plan_lan_membership(blueprint: NetworkBlueprint, rng: random.Random,
                         block: Prefix, plan: Dict):
    """Choose assigned addresses (and silent ones) for a LAN plan."""
    pool = list(block.host_addresses())
    capacity = len(pool)
    if plan["sparse"]:
        member_count = min(blueprint.sparse_members, capacity)
        members = sorted(rng.sample(pool, member_count))
    elif plan["underutilized"]:
        # One small contiguous cluster well under half the block: tracenet
        # observes a smaller subnet (the paper's natural underestimations).
        cluster = max(2, capacity // 4)
        start = rng.randrange(0, max(1, capacity - cluster))
        members = pool[start:start + cluster]
    else:
        lo, hi = blueprint.lan_utilization
        utilization = rng.uniform(lo, hi)
        member_count = max(3, int(round(capacity * utilization)))
        member_count = min(member_count, capacity)
        members = pool[:member_count]
    silent: List[int] = []
    if plan["partial"]:
        lo, hi = blueprint.partial_silent_fraction
        silent_count = max(1, int(round(len(members) * rng.uniform(lo, hi))))
        silent_count = min(silent_count, len(members) - 1)
        silent = sorted(rng.sample(members, silent_count))
    return members, silent


def _record(subnet, kind: str, plan: Dict) -> SubnetRecord:
    return SubnetRecord(
        subnet_id=subnet.subnet_id,
        prefix=subnet.prefix,
        kind=kind,
        firewalled=plan["firewalled"],
        partially_silent=plan["partial"],
        sparse=plan["sparse"],
        underutilized=plan.get("underutilized", False),
        multihomed=plan.get("multihomed", False),
    )


def _apply_policy(policy: ResponsePolicy, builder: TopologyBuilder,
                  records: List[SubnetRecord]) -> None:
    for record in records:
        if record.firewalled:
            policy.firewall_subnet(record.subnet_id)
        for address in record.silent_addresses:
            policy.silence_interface(address)


def _apply_router_variety(blueprint: NetworkBlueprint,
                          builder: TopologyBuilder, rng: random.Random,
                          prefix_tag: str) -> None:
    """Sample indirect response configurations and IP-ID behaviours.

    Most routers report the incoming interface (the common case the paper
    observes); a sampled minority report the shortest-path interface or a
    default address, exercising Algorithm 2's mate-pivot branch.
    """
    from ..netsim.router import IndirectConfig, IpIdMode

    # Filter before sorting: draws only ever happened for matching routers,
    # so the RNG stream is unchanged, but a merged million-router topology
    # is no longer re-sorted wholesale for every blueprint.
    own = sorted(r for r in builder.topology.routers
                 if r.startswith(prefix_tag))
    for router_id in own:
        router = builder.topology.routers[router_id]
        draw = rng.random()
        if draw < blueprint.shortest_path_fraction:
            router.indirect_config = IndirectConfig.SHORTEST_PATH
        elif draw < (blueprint.shortest_path_fraction
                     + blueprint.default_iface_fraction):
            router.indirect_config = IndirectConfig.DEFAULT
        if rng.random() < blueprint.random_ip_id_fraction:
            router.ip_id_mode = IpIdMode.RANDOM
