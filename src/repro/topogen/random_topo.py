"""Small random topologies for tests and property-based checks."""

from __future__ import annotations

import random
from typing import Optional

from .spec import GeneratedNetwork, NetworkBlueprint, add_vantage, synthesize


def random_blueprint(seed: int, max_p2p: int = 20, max_lans: int = 6,
                     name: Optional[str] = None) -> NetworkBlueprint:
    """A random but always-valid blueprint drawn from ``seed``."""
    rng = random.Random(seed)
    distribution = {
        31: rng.randint(1, max(1, max_p2p // 2)),
        30: rng.randint(2, max_p2p),
    }
    for length in (29, 28, 27):
        count = rng.randint(0, max_lans)
        if count:
            distribution[length] = count
    return NetworkBlueprint(
        name=name if name is not None else f"random-{seed}",
        seed=seed,
        base="10.0.0.0/12",
        distribution=distribution,
        backbone_routers=rng.randint(3, 8),
        chords=rng.randint(0, 3),
    )


def build_random(seed: int, vantage: str = "vantage", **kwargs
                 ) -> GeneratedNetwork:
    """Synthesize a random network with one vantage point attached."""
    network = synthesize(random_blueprint(seed, **kwargs))
    add_vantage(network, vantage)
    network.topology.validate()
    return network
