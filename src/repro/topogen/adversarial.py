"""Adversarial gauntlet topologies that stress individual heuristics.

On tree-like research networks the H3/H6/H7/H8 fringe rules are largely
redundant safety nets — H2's distance test and the half-utilization stop
already catch most overgrowth.  Their real work begins when the address
plan packs *equidistant* subnets into sibling CIDR blocks, which is exactly
what dense ISP edge allocation looks like.  This module builds motifs where
exactly one rule family stands between tracenet and a merge:

* **sibling-LAN motif** (defeats the pipeline iff H3/H4 are off): two LANs
  anchored on the same ingress router occupy sibling /28s; the
  second-contra-pivot rule notices the ingress's second interface (H8
  backs it up by recognizing the mate on the ingress router).
* **foreign-entry motif** (defeats iff H6 is off): the sibling /28 holds a
  LAN behind a *different* equidistant ingress whose own interface is
  silenced — only the fixed-entry-point test notices the foreign entry.
* **far-fringe motif** (an early-stop economy case, not an accuracy case):
  the sibling /28 holds point-to-point links hanging one hop past the
  LAN's members with silenced far routers.  H7 catches the near sides via
  their mates; with H7 off, H2 eventually TTL-catches the far addresses
  themselves and H1's shrink discards the absorbed near sides — the final
  prefix is identical, only the stop attribution and probe spend differ.
  (Any H7-catchable mate is itself a later H2-catchable candidate at the
  same growth level, so H7 cannot change final accuracy on this substrate;
  it buys earlier stops.)

Each motif contributes its ground-truth subnets; a survey with a rule
family disabled shows the merges/overestimates (or probe-count shifts)
that family prevents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..netsim.addressing import Prefix
from ..netsim.builder import PrefixAllocator, TopologyBuilder
from ..netsim.responsiveness import ResponsePolicy
from .spec import GeneratedNetwork, NetworkBlueprint, SubnetRecord


@dataclass
class GauntletMotif:
    """Bookkeeping for one adversarial motif."""

    kind: str
    probed_lan: Prefix
    sibling_blocks: List[Prefix] = field(default_factory=list)
    target: int = 0


def build_gauntlet(seed: int = 0, motifs_per_kind: int = 4
                   ) -> "GauntletNetwork":
    """A network of adversarial motifs hanging off a small backbone."""
    rng = random.Random(seed)
    builder = TopologyBuilder("gauntlet",
                              allocator=PrefixAllocator("172.16.0.0/14"))
    policy = ResponsePolicy(seed=seed)
    records: List[SubnetRecord] = []
    motifs: List[GauntletMotif] = []

    # A short backbone chain gives the motifs varied distances.
    backbone = [f"bb{i}" for i in range(4)]
    for a, b in zip(backbone, backbone[1:]):
        subnet = builder.link(a, b)
        records.append(SubnetRecord(subnet.subnet_id, subnet.prefix, "p2p"))
    counter = [0]

    def fresh(prefix_tag: str) -> str:
        counter[0] += 1
        return f"{prefix_tag}{counter[0]}"

    kinds = (["sibling-lan"] * motifs_per_kind
             + ["far-fringe"] * motifs_per_kind
             + ["foreign-entry"] * motifs_per_kind)
    for kind in kinds:
        anchor = rng.choice(backbone)
        if kind == "sibling-lan":
            motifs.append(_sibling_lan_motif(builder, records, anchor, fresh))
        elif kind == "far-fringe":
            motifs.append(_far_fringe_motif(builder, policy, records, anchor,
                                            fresh))
        else:
            motifs.append(_foreign_entry_motif(builder, policy, records,
                                               anchor, fresh))

    builder.edge_host("vantage", backbone[0])
    topology = builder.build()
    return GauntletNetwork(
        network=GeneratedNetwork(
            name="gauntlet",
            blueprint=NetworkBlueprint(name="gauntlet", seed=seed,
                                       distribution={}),
            topology=topology,
            policy=policy,
            records=records,
        ),
        motifs=motifs,
    )


@dataclass
class GauntletNetwork:
    """The gauntlet plus its motif inventory."""

    network: GeneratedNetwork
    motifs: List[GauntletMotif]

    @property
    def targets(self) -> List[int]:
        return [motif.target for motif in self.motifs]

    def motifs_of(self, kind: str) -> List[GauntletMotif]:
        return [motif for motif in self.motifs if motif.kind == kind]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for motif in self.motifs:
            counts[motif.kind] = counts.get(motif.kind, 0) + 1
        return counts


def _paired_blocks(builder: TopologyBuilder) -> List[Prefix]:
    """Two sibling /28s (one /27, split) from the allocator."""
    parent = builder.allocator.allocate(27)
    return parent.halves()


def _lan_with_members(builder: TopologyBuilder, block: Prefix,
                      anchor_router: str, member_routers: List[str],
                      anchor_last: bool = False):
    """A LAN on ``block``: anchor + members, anchor's address first or last."""
    hosts = list(block.host_addresses())
    order = member_routers + [anchor_router] if anchor_last else \
        [anchor_router] + member_routers
    addresses = hosts[:len(order)]
    if anchor_last:
        assignment = dict(zip(order, addresses))
    else:
        assignment = dict(zip(order, addresses))
    return builder.lan(assignment, prefix=block)


def _sibling_lan_motif(builder, records, backbone_anchor, fresh):
    """Two same-ingress LANs in sibling /28s; H3 is the only guard."""
    ingress = fresh("sibA")
    link = builder.link(backbone_anchor, ingress)
    records.append(SubnetRecord(link.subnet_id, link.prefix, "p2p"))
    low, high = _paired_blocks(builder)
    # lan1 must stay over half-utilized at /28 (> 7 of 14) so exploration
    # reaches the sibling block; lan1+lan2 together must exceed half of the
    # /27 (> 15) so an un-stopped absorb keeps growing into a merge.
    members1 = [fresh("sibm") for _ in range(9)]
    members2 = [fresh("sibm") for _ in range(6)]
    builder.routers(members1 + members2)
    lan1 = _lan_with_members(builder, low, ingress, members1)
    lan2 = _lan_with_members(builder, high, ingress, members2)
    records.append(SubnetRecord(lan1.subnet_id, lan1.prefix, "lan"))
    records.append(SubnetRecord(lan2.subnet_id, lan2.prefix, "lan"))
    target = builder.topology.routers[members1[0]].interface_on(
        lan1.subnet_id).address
    return GauntletMotif(kind="sibling-lan", probed_lan=lan1.prefix,
                         sibling_blocks=[lan2.prefix], target=target)


def _far_fringe_motif(builder, policy, records, backbone_anchor, fresh):
    """A LAN whose sibling /28 holds far point-to-point links; the far
    routers are silenced so only H7/H8 can expose the near sides."""
    ingress = fresh("farA")
    link = builder.link(backbone_anchor, ingress)
    records.append(SubnetRecord(link.subnet_id, link.prefix, "p2p"))
    low, high = _paired_blocks(builder)
    # 12 assigned of 14 keeps every level over half-utilized; together with
    # the four absorbed near-side stub interfaces the /27 level exceeds
    # half, so only H7's mate test stands between tracenet and a merge.
    members = [fresh("farm") for _ in range(11)]
    builder.routers(members)
    lan = _lan_with_members(builder, low, ingress, members)
    records.append(SubnetRecord(lan.subnet_id, lan.prefix, "lan"))
    sibling_blocks = []
    for index, sub_block in enumerate(high.halves()[0].halves()
                                      + high.halves()[1].halves()):
        owner = members[index]
        far_router = fresh("farY")
        stub = builder.link(owner, far_router, prefix=sub_block)
        records.append(SubnetRecord(stub.subnet_id, stub.prefix, "p2p"))
        sibling_blocks.append(stub.prefix)
        far_iface = builder.topology.routers[far_router].interface_on(
            stub.subnet_id)
        policy.silence_interface(far_iface.address)
        builder.topology.routers[far_router].indirect_config = \
            builder.topology.routers[far_router].indirect_config
    target = builder.topology.routers[members[-1]].interface_on(
        lan.subnet_id).address
    return GauntletMotif(kind="far-fringe", probed_lan=lan.prefix,
                         sibling_blocks=sibling_blocks, target=target)


def _foreign_entry_motif(builder, policy, records, backbone_anchor, fresh):
    """A LAN whose sibling /28 holds another LAN behind a *different*
    equidistant ingress with a silenced interface; only H6 notices."""
    ingress1 = fresh("forA")
    ingress2 = fresh("forB")
    link1 = builder.link(backbone_anchor, ingress1)
    link2 = builder.link(backbone_anchor, ingress2)
    records.append(SubnetRecord(link1.subnet_id, link1.prefix, "p2p"))
    records.append(SubnetRecord(link2.subnet_id, link2.prefix, "p2p"))
    low, high = _paired_blocks(builder)
    members1 = [fresh("form") for _ in range(9)]
    members2 = [fresh("form") for _ in range(7)]
    builder.routers(members1 + members2)
    lan1 = _lan_with_members(builder, low, ingress1, members1)
    # The foreign ingress takes the *last* address so its second-contra
    # signature would only surface after the members have been absorbed —
    # and it is silenced, so H3 never sees it at all.
    lan2 = _lan_with_members(builder, high, ingress2, members2,
                             anchor_last=True)
    records.append(SubnetRecord(lan1.subnet_id, lan1.prefix, "lan"))
    records.append(SubnetRecord(lan2.subnet_id, lan2.prefix, "lan"))
    foreign_iface = builder.topology.routers[ingress2].interface_on(
        lan2.subnet_id)
    policy.silence_interface(foreign_iface.address)
    target = builder.topology.routers[members1[0]].interface_on(
        lan1.subnet_id).address
    return GauntletMotif(kind="foreign-entry", probed_lan=lan1.prefix,
                         sibling_blocks=[lan2.prefix], target=target)
