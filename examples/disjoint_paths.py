#!/usr/bin/env python3
"""Figure 2 case study: picking disjoint overlay paths from a topology map.

An overlay designer wants node- and link-disjoint paths A->D and B->C.  On
the traceroute-collected map the two paths look disjoint; the physical
network routes both across one multi-access LAN.  tracenet's subnet
annotations expose the shared link and prevent the wrong choice.

Run:  python examples/disjoint_paths.py
"""

from repro import TraceNET, format_ip
from repro.baselines import Traceroute
from repro.topogen import figures


def hop_list(result):
    return [format_ip(a) if a is not None else "*"
            for a in result.path_addresses]


def main():
    net = figures.figure2_network()
    lan = net.topology.subnets[net.landmarks["shared_lan"]]
    d = net.hosts["D"].address
    c = net.hosts["C"].address

    print("Ground truth: the central multi-access LAN is "
          f"{lan.prefix}, joining routers {sorted(lan.router_ids)}.")
    print()

    p1 = Traceroute(net.engine(), "A", vary_flow=False).trace(d)
    p3 = Traceroute(net.engine(), "B", vary_flow=False).trace(c)
    print(f"traceroute P1 (A->D): {' -> '.join(hop_list(p1))}")
    print(f"traceroute P3 (B->C): {' -> '.join(hop_list(p3))}")
    shared = ({a for a in p1.path_addresses if a}
              & {a for a in p3.path_addresses if a})
    print(f"shared addresses between the traces: "
          f"{sorted(map(format_ip, shared)) or 'none'}")
    print("=> traceroute's map calls P1 and P3 link-disjoint."
          if not shared else "=> traceroute noticed the overlap (lucky).")
    print()

    t1 = TraceNET(net.engine(), "A").trace(d)
    t3 = TraceNET(net.engine(), "B").trace(c)
    print("tracenet P1 (A->D):")
    print(t1.describe())
    print()
    print("tracenet P3 (B->C):")
    print(t3.describe())
    print()

    p1_lans = {s.prefix for s in t1.subnets}
    p3_lans = {s.prefix for s in t3.subnets}
    common = p1_lans & p3_lans
    print(f"subnets shared by both tracenet paths: "
          f"{sorted(map(str, common))}")
    if lan.prefix in common:
        print("=> tracenet exposes the shared LAN: P1 and P3 are NOT "
              "link-disjoint, and the overlay must pick other paths.")


if __name__ == "__main__":
    main()
