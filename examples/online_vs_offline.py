#!/usr/bin/env python3
"""tracenet vs traceroute + offline subnet inference (the paper's [7]).

The pre-tracenet pipeline harvests addresses with traceroute and infers
"same LAN" relations afterwards.  Its blind spot: it only ever reasons
about addresses that happened to appear on some traced path.  tracenet
probes the subnet *while standing at it*, so it recovers interfaces no
trace ever crossed.

Run:  python examples/online_vs_offline.py [seed]
"""

import sys

from repro import Engine, TraceNET
from repro.baselines import (
    Traceroute,
    infer_subnets,
    offline_dataset_from_traces,
)
from repro.evaluation import collected_prefixes, match_subnets
from repro.topogen import internet2


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    network = internet2.build(seed=seed)
    targets = internet2.targets(network, seed=seed)

    # Online: tracenet.
    tracenet_tool = TraceNET(
        Engine(network.topology, policy=network.policy), "utdallas")
    tracenet_tool.trace_many(targets)
    online_blocks = collected_prefixes(tracenet_tool.collected_subnets)
    online_probes = tracenet_tool.prober.stats.sent

    # Offline: traceroute sweep, then post-hoc inference.
    tracer = Traceroute(
        Engine(network.topology, policy=network.policy), "utdallas",
        vary_flow=False)
    traces = [tracer.trace(target) for target in targets]
    dataset = offline_dataset_from_traces(traces)
    inferred = infer_subnets(dataset)
    offline_blocks = [s.prefix for s in inferred if s.size >= 2]
    offline_probes = tracer.prober.stats.sent

    online = match_subnets(network.ground_truth, online_blocks)
    offline = match_subnets(network.ground_truth, offline_blocks)

    print(f"ground truth: {len(network.ground_truth)} subnets")
    print()
    print(f"{'pipeline':<38} {'probes':>8} {'exact':>7} {'addresses':>10}")
    print(f"{'tracenet (online)':<38} {online_probes:>8} "
          f"{online.exact_match_rate():>7.1%} "
          f"{len(tracenet_tool.collected_addresses):>10}")
    print(f"{'traceroute + offline inference [7]':<38} {offline_probes:>8} "
          f"{offline.exact_match_rate():>7.1%} "
          f"{len(dataset):>10}")
    print()
    print("tracenet spends extra probes at each hop but recovers the "
          "subnet relation during collection; the offline pipeline only "
          "sees path addresses and leaves most LAN members undiscovered.")


if __name__ == "__main__":
    main()
