#!/usr/bin/env python3
"""Table 3: the same survey with ICMP, UDP and TCP probes.

Routers answer ICMP far more readily than UDP, and barely answer TCP —
so the probing protocol decides how much topology a collector sees.

Run:  python examples/protocol_shootout.py [scale] [targets_per_isp]
"""

import sys

from repro import experiments


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    per_isp = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    outcome = experiments.run_protocol_comparison(scale=scale, per_isp=per_isp)
    print(outcome.render())
    totals = outcome.totals()
    print()
    print(f"totals: ICMP {totals['icmp']}, UDP {totals['udp']}, "
          f"TCP {totals['tcp']}")
    print("paper reference (site Rice): ICMP 11995, UDP 3779, TCP 68 — "
          "ICMP clearly outperforms UDP and TCP is negligible.")


if __name__ == "__main__":
    main()
