#!/usr/bin/env python3
"""Survey-scale collection with checkpoints and resume.

Runs the Internet2 survey through the SurveyRunner, interrupting it halfway
(simulating a crash or probe-budget exhaustion), then resumes from the JSON
checkpoint: already-traced targets are skipped and the archived subnets
seed the collector's reuse registry.

Run:  python examples/checkpointed_survey.py [seed]
"""

import os
import sys
import tempfile

from repro import Engine, SurveyRunner, TraceNET
from repro.mapping import load_archive
from repro.topogen import internet2


def make_tool(network):
    return TraceNET(Engine(network.topology, policy=network.policy),
                    "utdallas")


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    network = internet2.build(seed=seed)
    targets = internet2.targets(network, seed=seed)
    checkpoint = os.path.join(tempfile.gettempdir(), "tracenet-survey.json")
    if os.path.exists(checkpoint):
        os.unlink(checkpoint)

    half = len(targets) // 2
    print(f"phase 1: tracing the first {half} of {len(targets)} targets...")
    first = SurveyRunner(make_tool(network), checkpoint_path=checkpoint)
    progress = first.run(targets[:half])
    print(f"  {progress.describe()}")
    print(f"  checkpoint: {checkpoint} "
          f"({os.path.getsize(checkpoint)} bytes)")

    print("phase 2: 'restart' — a fresh tool resumes from the checkpoint...")
    resumed_tool = make_tool(network)
    resumed = SurveyRunner(resumed_tool, checkpoint_path=checkpoint)
    progress = resumed.run(targets)
    print(f"  {progress.describe()}")

    archive = load_archive(checkpoint)
    multi = sum(1 for s in archive.subnets if s.size > 1)
    print(f"final archive: {len(archive.traces)} traces, "
          f"{multi} multi-member subnets")
    os.unlink(checkpoint)


if __name__ == "__main__":
    main()
