#!/usr/bin/env python3
"""From tracenet data to a router-level map: alias resolution.

Runs the Internet2 survey, extracts the alias pairs the collection implies
(ingress + contra-pivot share the ingress router), verifies them with an
Ally-style IP-ID test, and groups interfaces into inferred routers.

Run:  python examples/alias_resolution.py [seed]
"""

import sys

from repro import Engine, Prober, TraceNET, format_ip
from repro.aliases import (
    AliasVerdict,
    AllyResolver,
    analytical_pairs,
    groups_from_pairs,
    ground_truth_pairs,
    negative_pairs,
    pair_keys,
    score_pairs,
)
from repro.topogen import internet2


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    network = internet2.build(seed=seed)
    engine = Engine(network.topology, policy=network.policy)
    tool = TraceNET(engine, "utdallas")
    tool.trace_many(internet2.targets(network, seed=seed))
    print(f"survey done: {len(tool.collected_subnets)} subnets, "
          f"{len(tool.collected_addresses)} addresses")

    pairs = pair_keys(analytical_pairs(tool.collected_subnets))
    negatives = negative_pairs(tool.collected_subnets)
    print(f"analytical alias pairs: {len(pairs)} "
          f"(+{len(negatives)} negative constraints) — zero extra probes")

    resolver = AllyResolver(Prober(engine, "utdallas"))
    confirmed = [(r.first, r.second) for r in resolver.verify_pairs(sorted(pairs))
                 if r.verdict == AliasVerdict.ALIASES]
    print(f"Ally-confirmed pairs: {len(confirmed)} "
          f"({resolver.tests_run} tests, 4 probes each)")

    truth = ground_truth_pairs(network.topology,
                               restrict_to=tool.collected_addresses)
    print(f"analytical accuracy: {score_pairs(pairs, truth).describe()}")
    print(f"confirmed accuracy:  {score_pairs(confirmed, truth).describe()}")

    routers = groups_from_pairs(confirmed)
    print(f"\ninferred routers (largest interface groups):")
    for group in routers[:5]:
        print("  {" + ", ".join(format_ip(a) for a in sorted(group)) + "}")


if __name__ == "__main__":
    main()
