#!/usr/bin/env python3
"""The Section 4.2 experiment: cross-validating tracenet across vantages.

Synthesizes the four-ISP internet (Sprintlink, NTT America, Level3,
AboveNet plus a transit core), traces a common target set from the three
PlanetLab-like vantage points, and prints Figures 6-9.

Run:  python examples/multi_vantage_crossval.py [scale] [targets_per_isp]
(defaults: scale 0.3, 40 targets per ISP — a fast miniature; the benches
run it larger.)
"""

import sys

from repro import experiments


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    per_isp = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    outcome = experiments.run_cross_validation(scale=scale, per_isp=per_isp)
    print(f"internet: {outcome.internet.topology.summary()}")
    print(f"common target set: {len(outcome.targets)} addresses")
    print()
    print(outcome.render())
    print()
    print("paper reference: ~60% of a vantage's subnets observed by all "
          "three sites, ~80% by at least one other; Sprintlink yields the "
          "most subnets, NTT the fewest (but the most subnetized IPs).")


if __name__ == "__main__":
    main()
