#!/usr/bin/env python3
"""The Table 1 experiment end to end: tracenet accuracy over Internet2.

Builds the Internet2-like ground-truth topology (179 subnets with the
paper's prefix distribution and unresponsiveness structure), traces one
random target per subnet from a single vantage, and prints the collected
vs original distribution table plus the similarity rates of Section 4.1.2.

Run:  python examples/internet2_survey.py [seed]
"""

import sys

from repro import experiments


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    outcome = experiments.run_internet2_survey(seed=seed)
    print(outcome.render())
    print()
    print(f"paper reference: 73.7% exact including unresponsive subnets, "
          f"94.9% excluding; similarities 0.83 / 0.86")
    print(f"this run:        {outcome.exact_match_rate:.1%} / "
          f"{outcome.observable_exact_match_rate:.1%}; "
          f"similarities {outcome.similarity()[0]:.2f} / "
          f"{outcome.similarity()[1]:.2f}")


if __name__ == "__main__":
    main()
