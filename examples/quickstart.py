#!/usr/bin/env python3
"""Quickstart: build a small network, run tracenet, compare to traceroute.

The scene is the paper's Figure 1: a path whose middle hop sits on a
multi-access LAN.  Traceroute reports one address per hop; tracenet grows
the subnet at every hop, revealing the LAN's other interfaces, the
contra-pivot, the ingress, and the observed subnet masks.

Run:  python examples/quickstart.py
"""

from repro import Engine, TopologyBuilder, TraceNET, format_ip
from repro.baselines import Traceroute


def build_network():
    """vantage -- R1 -- R2 ==[ /29 LAN: R2,R3,R4,R6 ]== R4 -- R5 (target)."""
    builder = TopologyBuilder("quickstart")
    builder.link("R1", "R2")
    lan = builder.lan(["R2", "R3", "R4", "R6"], length=29)
    stub = builder.link("R4", "R5")
    builder.edge_host("vantage", "R1")
    topology = builder.build()
    target = topology.routers["R5"].interface_on(stub.subnet_id).address
    return topology, lan, target


def main():
    topology, lan, target = build_network()
    print(topology.summary())
    print(f"ground-truth LAN: {lan.prefix} with "
          f"{sorted(format_ip(a) for a in lan.addresses)}")
    print()

    print("--- classic traceroute ---")
    tracer = Traceroute(Engine(topology), "vantage")
    for hop in tracer.trace(target).hops:
        addr = format_ip(hop.address) if hop.address is not None else "*"
        print(f"{hop.ttl:3d}  {addr}")
    print()

    print("--- tracenet ---")
    tool = TraceNET(Engine(topology), "vantage")
    result = tool.trace(target)
    print(result.describe())
    print()

    lan_view = result.subnet_for(min(lan.addresses))
    assert lan_view is not None
    print(f"tracenet recovered the LAN as {lan_view.prefix} "
          f"({lan_view.size} interfaces) using {result.probes_sent} probes;")
    print(f"traceroute saw {len(set(a for a in result.path_addresses if a))} "
          f"addresses on the same path.")


if __name__ == "__main__":
    main()
