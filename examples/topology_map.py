#!/usr/bin/env python3
"""Build a queryable subnet-level topology map from tracenet collections.

Collects from two vantage points on the Figure 2 network, merges the
per-vantage views, builds the subnet graph, answers the overlay designer's
link-disjointness question through the API, and exports GraphViz.

Run:  python examples/topology_map.py [--dot]
"""

import sys

from repro import TraceNET
from repro.mapping import map_from_collections, render_adjacency
from repro.topogen import figures


def main():
    net = figures.figure2_network()
    collections = {}
    traces = []
    for vantage, destination in (("A", net.hosts["D"].address),
                                 ("B", net.hosts["C"].address),
                                 ("A", net.hosts["C"].address)):
        tool = TraceNET(net.engine(), vantage)
        traces.append(tool.trace(destination))
        collections.setdefault(vantage, []).extend(tool.collected_subnets)

    topo_map = map_from_collections(collections, traces)
    print(topo_map.summary())
    print()
    print(render_adjacency(topo_map))
    print()

    path_a = [a for a in traces[0].path_addresses if a is not None]
    path_b = [a for a in traces[1].path_addresses if a is not None]
    shared = topo_map.shared_subnets(path_a, path_b)
    print(f"P1 (A->D) and P3 (B->C) link-disjoint? "
          f"{topo_map.link_disjoint(path_a, path_b)}")
    if shared:
        print(f"shared subnets: {', '.join(str(s.prefix) for s in shared)}")

    if "--dot" in sys.argv:
        print()
        print(topo_map.to_dot())


if __name__ == "__main__":
    main()
